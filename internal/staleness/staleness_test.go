package staleness

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
)

// cacheWorld models the access-pattern taxonomy the paper's comparison
// rests on: hot entries (touched every round), cold-but-needed entries
// (touched rarely but genuinely required), and leaked entries (removed
// from the working set but still pinned by a stray reference).
type cacheWorld struct {
	rt    *core.Runtime
	entry *core.Class
	hot   []core.Ref
	cold  []core.Ref
	leak  []core.Ref
}

func newCacheWorld(t *testing.T) *cacheWorld {
	t.Helper()
	rt := core.New(core.Config{HeapWords: 1 << 14, Mode: core.Infrastructure})
	w := &cacheWorld{rt: rt, entry: rt.DefineClass("Entry", core.DataField("v"))}
	th := rt.MainThread()

	arr := th.NewRefArray(30)
	rt.AddGlobal("world").Set(arr)
	slot := 0
	add := func(dst *[]core.Ref, n int) {
		for i := 0; i < n; i++ {
			e := th.New(w.entry)
			rt.ArrSetRef(arr, slot, e)
			slot++
			*dst = append(*dst, e)
		}
	}
	add(&w.hot, 10)
	add(&w.cold, 10)
	add(&w.leak, 10)
	return w
}

func TestStalenessFlagsLeaksAndColdData(t *testing.T) {
	w := newCacheWorld(t)
	tr := New(3)

	for round := 0; round < 5; round++ {
		for _, e := range w.hot {
			tr.Touch(e)
		}
		// cold entries are touched once, early.
		if round == 0 {
			for _, e := range w.cold {
				tr.Touch(e)
			}
		}
		// leaked entries: never touched after creation.
		if err := w.rt.GC(); err != nil {
			t.Fatal(err)
		}
		tr.Advance(w.rt)
	}

	stale := tr.Stale(w.rt)
	flagged := map[core.Ref]bool{}
	for _, s := range stale {
		flagged[s.Ref] = true
		if s.Class != "Entry" && s.Class != "Object[]" {
			t.Errorf("unexpected class %q", s.Class)
		}
	}
	for _, e := range w.leak {
		if !flagged[e] {
			t.Errorf("leaked entry %d not flagged", e)
		}
	}
	for _, e := range w.hot {
		if flagged[e] {
			t.Errorf("hot entry %d flagged", e)
		}
	}
	// The heuristic's signature weakness: cold-but-needed data is
	// indistinguishable from a leak.
	coldFlagged := 0
	for _, e := range w.cold {
		if flagged[e] {
			coldFlagged++
		}
	}
	if coldFlagged == 0 {
		t.Error("expected false positives on cold data — the heuristic's documented behavior")
	}
}

func TestAdvanceDropsReclaimed(t *testing.T) {
	rt := core.New(core.Config{HeapWords: 1 << 12, Mode: core.Infrastructure})
	entry := rt.DefineClass("Entry")
	th := rt.MainThread()
	g := rt.AddGlobal("g")
	e := th.New(entry)
	g.Set(e)
	tr := New(1)
	tr.Touch(e)
	tr.Advance(rt)
	if tr.Tracked() == 0 {
		t.Fatal("live object not tracked")
	}
	g.Set(core.Nil)
	if err := rt.GC(); err != nil {
		t.Fatal(err)
	}
	tr.Advance(rt)
	if tr.Tracked() != 0 {
		t.Errorf("reclaimed object still tracked: %d", tr.Tracked())
	}
}

func TestTouchNilIsNoop(t *testing.T) {
	tr := New(1)
	tr.Touch(core.Nil)
	if tr.Tracked() != 0 {
		t.Error("Nil tracked")
	}
}

// The paper's accuracy claim as an executable contrast: on the same heap,
// the staleness heuristic flags leaked AND cold objects, while
// assert-ownedby flags exactly the leaked ones ("the system generates no
// false positives").
func TestContrastWithOwnershipAssertions(t *testing.T) {
	rt := core.New(core.Config{HeapWords: 1 << 14, Mode: core.Infrastructure})
	container := rt.DefineClass("Container", core.RefField("elems"))
	side := rt.DefineClass("SideTable", core.RefField("elems"))
	entry := rt.DefineClass("Entry", core.DataField("v"))
	th := rt.MainThread()

	cont := th.New(container)
	rt.AddGlobal("container").Set(cont)
	celems := th.NewRefArray(20)
	rt.SetRef(cont, container.MustFieldIndex("elems"), celems)

	cache := th.New(side)
	rt.AddGlobal("cache").Set(cache)
	selems := th.NewRefArray(20)
	rt.SetRef(cache, side.MustFieldIndex("elems"), selems)

	tr := New(2)
	var entries []core.Ref
	for i := 0; i < 20; i++ {
		e := th.New(entry)
		rt.ArrSetRef(celems, i, e)
		rt.ArrSetRef(selems, i, e) // also cached
		rt.AssertOwnedBy(cont, e)
		entries = append(entries, e)
	}

	// Entries 0-4 leak: removed from the container, still cached.
	for i := 0; i < 5; i++ {
		rt.ArrSetRef(celems, i, core.Nil)
	}
	// Entries 5-9 are cold: live in the container, never accessed again.
	// Entries 10-19 are hot.
	for round := 0; round < 4; round++ {
		for i := 10; i < 20; i++ {
			tr.Touch(entries[i])
		}
		if err := rt.GC(); err != nil {
			t.Fatal(err)
		}
		tr.Advance(rt)
	}

	// Heuristic: flags leaked + cold (10+ suspects among entries).
	staleEntries := 0
	for _, s := range tr.Stale(rt) {
		if s.Class == "Entry" {
			staleEntries++
		}
	}
	if staleEntries < 10 {
		t.Errorf("heuristic flagged %d entries, expected >= 10 (leaks + cold)", staleEntries)
	}

	// Assertions: exactly the five leaked entries, every GC.
	unowned := map[core.Ref]bool{}
	for _, v := range rt.Violations() {
		if v.Kind == report.UnownedOwnee {
			unowned[v.Object] = true
		}
	}
	if len(unowned) != 5 {
		t.Fatalf("assertions flagged %d entries, want exactly 5", len(unowned))
	}
	for i := 0; i < 5; i++ {
		if !unowned[entries[i]] {
			t.Errorf("leaked entry %d not flagged by ownership", i)
		}
	}
}

// TestAdvanceSteadyStateAllocs pins the side-table conversion's allocation
// contract: after the first Advance binds the tracker's closures to a
// runtime and materializes its scratch chunks, further Advances allocate
// nothing — the old implementation rebuilt a map[Ref]bool of every live
// object per collection.
func TestAdvanceSteadyStateAllocs(t *testing.T) {
	w := newCacheWorld(t)
	tr := New(3)
	for _, e := range w.hot {
		tr.Touch(e)
	}
	// Warm up: bind closures, materialize chunks, settle the heap.
	for i := 0; i < 3; i++ {
		if err := w.rt.GC(); err != nil {
			t.Fatal(err)
		}
		tr.Advance(w.rt)
	}
	allocs := testing.AllocsPerRun(20, func() { tr.Advance(w.rt) })
	if allocs != 0 {
		t.Fatalf("steady-state Advance allocates %.1f objects per run, want 0", allocs)
	}
}

// TestStalenessSideTabDifferential runs one deterministic access script
// against two trackers — dense side tables and the map-backed reference —
// over identically-driven runtimes across the four collector modes and
// three seeds, and requires identical suspect lists (refs, classes, idle
// epochs, order) and table sizes after every Advance.
func TestStalenessSideTabDifferential(t *testing.T) {
	modes := []struct {
		name string
		cfg  func() core.Config
	}{
		{"serial", func() core.Config {
			return core.Config{HeapWords: 1 << 14, Mode: core.Infrastructure}
		}},
		{"parsweep", func() core.Config {
			return core.Config{HeapWords: 1 << 14, Mode: core.Infrastructure, SweepWorkers: 4}
		}},
		{"lazysweep", func() core.Config {
			return core.Config{HeapWords: 1 << 14, Mode: core.Infrastructure, LazySweep: true}
		}},
		{"concurrent", func() core.Config {
			return core.Config{
				HeapWords: 1 << 14, Mode: core.Infrastructure,
				ConcurrentGC: true, GCTriggerFraction: 0.4, GCAssistSlack: 0.5,
				AllocBuffers: 128,
			}
		}},
	}
	for _, mode := range modes {
		for seed := int64(1); seed <= 3; seed++ {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s_seed%d", mode.name, seed), func(t *testing.T) {
				runStalenessDifferential(t, mode.cfg, seed)
			})
		}
	}
}

// stalenessWorld is one runtime plus a tracker, driven by the script in
// runStalenessDifferential. Both worlds make identical allocation and
// mutation sequences, so refs correspond one to one.
type stalenessWorld struct {
	rt    *core.Runtime
	th    *core.Thread
	entry *core.Class
	arr   core.Ref
	objs  []core.Ref
	tr    *Tracker
}

func newStalenessWorld(t *testing.T, cfg core.Config, tr *Tracker) *stalenessWorld {
	t.Helper()
	rt := core.New(cfg)
	w := &stalenessWorld{rt: rt, th: rt.MainThread(), tr: tr}
	w.entry = rt.DefineClass("Entry", core.DataField("v"))
	w.arr = w.th.NewRefArray(64)
	rt.AddGlobal("world").Set(w.arr)
	return w
}

func runStalenessDifferential(t *testing.T, cfg func() core.Config, seed int64) {
	dense := newStalenessWorld(t, cfg(), New(2))
	ref := newStalenessWorld(t, cfg(), NewMapBacked(2))
	worlds := []*stalenessWorld{dense, ref}

	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < 400; step++ {
		op, slot := rng.Intn(100), rng.Intn(64)
		for _, w := range worlds {
			switch {
			case op < 35: // allocate into a slot
				e := w.th.New(w.entry)
				w.rt.ArrSetRef(w.arr, slot, e)
				w.objs = append(w.objs, e)
			case op < 55: // touch a slot's object
				if r := w.rt.ArrGetRef(w.arr, slot); r != core.Nil {
					w.tr.Touch(r)
				}
			case op < 70: // drop a slot
				w.rt.ArrSetRef(w.arr, slot, core.Nil)
			case op < 90: // no-op mutator churn
				w.th.NewDataArray(1 + op%8)
			default: // collect + advance
				if err := w.rt.GC(); err != nil {
					t.Fatalf("GC: %v", err)
				}
				w.tr.Advance(w.rt)
			}
		}
		if op >= 90 {
			compareStaleness(t, step, dense, ref)
		}
	}
	// Final settle: both worlds quiesce, advance past threshold, compare.
	for _, w := range worlds {
		if err := w.rt.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := w.rt.GC(); err != nil {
				t.Fatalf("GC: %v", err)
			}
			w.tr.Advance(w.rt)
		}
	}
	compareStaleness(t, -1, dense, ref)
}

// compareStaleness requires the two worlds' suspect lists to agree by
// script identity (slice index of the allocation), class, and idle count —
// refs differ between runtimes only if allocation order diverged, which is
// itself a failure.
func compareStaleness(t *testing.T, step int, dense, ref *stalenessWorld) {
	t.Helper()
	if got, want := dense.tr.Tracked(), ref.tr.Tracked(); got != want {
		t.Fatalf("step %d: Tracked: dense %d, map %d", step, got, want)
	}
	render := func(w *stalenessWorld) []string {
		id := make(map[core.Ref]int, len(w.objs))
		for i, r := range w.objs {
			id[r] = i
		}
		var out []string
		for _, s := range w.tr.Stale(w.rt) {
			n, ok := id[s.Ref]
			if !ok {
				n = -1
			}
			out = append(out, fmt.Sprintf("%d:%s:%d", n, s.Class, s.IdleEpochs))
		}
		return out
	}
	if got, want := render(dense), render(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: suspect lists differ\ndense: %v\nmap:   %v", step, got, want)
	}
}
