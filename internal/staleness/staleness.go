// Package staleness implements a miniature staleness-based leak detector
// in the style of SWAT (Chilimbi and Hauswirth, ASPLOS 2004) and Bell
// (Bond and McKinley, ASPLOS 2006) — the heuristic baselines the paper
// contrasts GC assertions against: "objects that have not been accessed in
// a long time are probably memory leaks... These techniques, however, can
// only suggest potential leaks, which the programmer must then examine
// manually."
//
// The application reports accesses through Touch (the analog of SWAT's
// sampled read barrier); Advance, called after each collection, ages every
// live object and drops reclaimed ones. Stale returns the live objects
// idle past the threshold — a list that famously includes cold-but-needed
// data (false positives), which the contrast tests demonstrate against the
// assertion-based diagnosis of the same heap.
package staleness

import (
	"sort"

	"repro/internal/core"
)

// Tracker tracks last-access epochs per live object.
type Tracker struct {
	// Threshold is the number of epochs (collections) an object must go
	// untouched to be reported (default 3).
	Threshold uint64

	epoch uint64
	// last[r] is the epoch of r's most recent access (or its first
	// sighting, for objects never touched).
	last map[core.Ref]uint64
}

// New creates a tracker.
func New(threshold uint64) *Tracker {
	if threshold == 0 {
		threshold = 3
	}
	return &Tracker{Threshold: threshold, last: map[core.Ref]uint64{}}
}

// Touch records an access to r — call it wherever the application reads or
// writes the object (SWAT samples these; we record them all).
func (t *Tracker) Touch(r core.Ref) {
	if r == core.Nil {
		return
	}
	t.last[r] = t.epoch
}

// Advance ages the tracker by one collection: call it right after a full
// GC. Reclaimed objects leave the table (their refs may be recycled);
// never-seen live objects enter it with the current epoch as their
// baseline.
func (t *Tracker) Advance(rt *core.Runtime) {
	t.epoch++
	live := map[core.Ref]bool{}
	rt.Objects(func(r core.Ref) { live[r] = true })
	for r := range t.last {
		if !live[r] {
			delete(t.last, r)
		}
	}
	for r := range live {
		if _, ok := t.last[r]; !ok {
			t.last[r] = t.epoch
		}
	}
}

// StaleObject is one suspect.
type StaleObject struct {
	Ref        core.Ref
	Class      string
	IdleEpochs uint64
}

// Stale returns the live objects idle for at least Threshold epochs,
// most-stale first. Note what this is: a heuristic suspect list. Cold but
// perfectly live data lands here too.
func (t *Tracker) Stale(rt *core.Runtime) []StaleObject {
	var out []StaleObject
	for r, last := range t.last {
		idle := t.epoch - last
		if idle >= t.Threshold {
			out = append(out, StaleObject{
				Ref:        r,
				Class:      rt.ClassOf(r).Name,
				IdleEpochs: idle,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IdleEpochs != out[j].IdleEpochs {
			return out[i].IdleEpochs > out[j].IdleEpochs
		}
		return out[i].Ref < out[j].Ref
	})
	return out
}

// Tracked returns the current table size (tools and tests).
func (t *Tracker) Tracked() int { return len(t.last) }
