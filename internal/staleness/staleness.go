// Package staleness implements a miniature staleness-based leak detector
// in the style of SWAT (Chilimbi and Hauswirth, ASPLOS 2004) and Bell
// (Bond and McKinley, ASPLOS 2006) — the heuristic baselines the paper
// contrasts GC assertions against: "objects that have not been accessed in
// a long time are probably memory leaks... These techniques, however, can
// only suggest potential leaks, which the programmer must then examine
// manually."
//
// The application reports accesses through Touch (the analog of SWAT's
// sampled read barrier); Advance, called after each collection, ages every
// live object and drops reclaimed ones. Stale returns the live objects
// idle past the threshold — a list that famously includes cold-but-needed
// data (false positives), which the contrast tests demonstrate against the
// assertion-based diagnosis of the same heap.
//
// Touch is the profiler's hot path — it runs on every recorded access —
// so the last-access table is a dense arena-indexed side table
// (internal/sidetab): an array store per Touch instead of a map write,
// and an Advance that reuses one scratch table instead of rebuilding a
// live map per collection (zero steady-state allocation). NewMapBacked
// keeps the original map implementation as the differential and benchmark
// baseline.
package staleness

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sidetab"
)

// Tracker tracks last-access epochs per live object.
type Tracker struct {
	// Threshold is the number of epochs (collections) an object must go
	// untouched to be reported (default 3).
	Threshold uint64

	epoch uint64

	// Dense form: tab[r] = last-access epoch + 1 (the +1 bias keeps
	// epoch 0 representable; 0 means untracked). Stamps are uint32, so
	// the tracker supports 2^32-2 Advances — epochs beyond that would
	// alias. scratch is the per-Advance live set, cleared by epoch bump.
	tab     *sidetab.Epoch32
	scratch *sidetab.Bits

	// advRT caches the runtime the stamp closure is bound to, so
	// steady-state Advances reuse one closure and allocate nothing.
	advRT   *core.Runtime
	stampFn func(core.Ref)
	pruneFn func(uint32, uint32) bool

	// Map-backed reference form (NewMapBacked): last[r] is the epoch of
	// r's most recent access (or its first sighting, for objects never
	// touched). nil in dense mode.
	last map[core.Ref]uint64
}

// New creates a tracker backed by dense side tables.
func New(threshold uint64) *Tracker {
	if threshold == 0 {
		threshold = 3
	}
	return &Tracker{
		Threshold: threshold,
		tab:       sidetab.NewEpoch32(),
		scratch:   sidetab.NewBits(),
	}
}

// NewMapBacked creates a tracker using the original map[Ref]
// implementation — the reference the sidetab differential tests compare
// against and the assertbench "before" baseline.
func NewMapBacked(threshold uint64) *Tracker {
	if threshold == 0 {
		threshold = 3
	}
	return &Tracker{Threshold: threshold, last: map[core.Ref]uint64{}}
}

// Touch records an access to r — call it wherever the application reads or
// writes the object (SWAT samples these; we record them all).
func (t *Tracker) Touch(r core.Ref) {
	if r == core.Nil {
		return
	}
	if t.last != nil {
		t.last[r] = t.epoch
		return
	}
	t.tab.Set(uint32(r), uint32(t.epoch)+1)
}

// Advance ages the tracker by one collection: call it right after a full
// GC. Reclaimed objects leave the table (their refs may be recycled);
// never-seen live objects enter it with the current epoch as their
// baseline. The dense form does one heap walk into a reusable scratch
// table and prunes against it — after the first call for a runtime it
// allocates nothing (the steady-state assertion in its test pins this).
func (t *Tracker) Advance(rt *core.Runtime) {
	t.epoch++
	if t.last != nil {
		live := map[core.Ref]bool{}
		rt.Objects(func(r core.Ref) { live[r] = true })
		for r := range t.last {
			if !live[r] {
				delete(t.last, r)
			}
		}
		for r := range live {
			if _, ok := t.last[r]; !ok {
				t.last[r] = t.epoch
			}
		}
		return
	}

	t.scratch.Clear()
	if t.advRT != rt || t.stampFn == nil {
		t.advRT = rt
		t.stampFn = func(r core.Ref) {
			t.scratch.Set(uint32(r))
			if _, ok := t.tab.Get(uint32(r)); !ok {
				t.tab.Set(uint32(r), uint32(t.epoch)+1)
			}
		}
		t.pruneFn = func(key, _ uint32) bool {
			if !t.scratch.Get(key) {
				t.tab.Delete(key)
			}
			return true
		}
	}
	rt.Objects(t.stampFn)
	t.tab.Range(t.pruneFn)
}

// StaleObject is one suspect.
type StaleObject struct {
	Ref        core.Ref
	Class      string
	IdleEpochs uint64
}

// Stale returns the live objects idle for at least Threshold epochs,
// most-stale first. Note what this is: a heuristic suspect list. Cold but
// perfectly live data lands here too.
func (t *Tracker) Stale(rt *core.Runtime) []StaleObject {
	var out []StaleObject
	add := func(r core.Ref, last uint64) {
		idle := t.epoch - last
		if idle >= t.Threshold {
			out = append(out, StaleObject{
				Ref:        r,
				Class:      rt.ClassOf(r).Name,
				IdleEpochs: idle,
			})
		}
	}
	if t.last != nil {
		for r, last := range t.last {
			add(r, last)
		}
	} else {
		t.tab.Range(func(key, v uint32) bool {
			add(core.Ref(key), uint64(v)-1)
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IdleEpochs != out[j].IdleEpochs {
			return out[i].IdleEpochs > out[j].IdleEpochs
		}
		return out[i].Ref < out[j].Ref
	})
	return out
}

// Tracked returns the current table size (tools and tests).
func (t *Tracker) Tracked() int {
	if t.last != nil {
		return len(t.last)
	}
	return t.tab.Len()
}
