package swapleak

import (
	"testing"

	"repro/internal/core"
	"repro/internal/report"
)

func newProgram(t *testing.T, cfg Config) *Program {
	t.Helper()
	rt := core.New(core.Config{HeapWords: 1 << 16, Mode: core.Infrastructure})
	return New(rt, cfg)
}

func TestSwapLeakDetectedWithHiddenReferencePath(t *testing.T) {
	p := newProgram(t, Config{AssertDeadAfterSwap: true})
	p.RunSwapLoop()
	if err := p.Runtime().GC(); err != nil {
		t.Fatal(err)
	}
	vs := p.Runtime().Violations()
	if len(vs) == 0 {
		t.Fatal("swap leak not detected")
	}
	// Every temporary is pinned: one violation per array slot.
	if len(vs) != p.cfg.Objects {
		t.Errorf("violations = %d, want %d", len(vs), p.cfg.Objects)
	}
	v := vs[0]
	if v.Kind != report.DeadReachable || v.Class != "SObject" {
		t.Fatalf("violation = %s", v.Format())
	}
	// The paper's reported path: SArray -> [SObject arr] -> SObject ->
	// SObject$Rep -> SObject (the hidden this$0 reference).
	want := []string{"SArray", "Object[]", "SObject", "SObject$Rep", "SObject"}
	if len(v.Path) != len(want) {
		t.Fatalf("path = %+v, want %v", v.Path, want)
	}
	for i, cls := range want {
		if v.Path[i].Class != cls {
			t.Errorf("path[%d] = %q, want %q", i, v.Path[i].Class, cls)
		}
	}
}

func TestStaticRepFix(t *testing.T) {
	p := newProgram(t, Config{StaticRep: true, AssertDeadAfterSwap: true})
	p.RunSwapLoop()
	if err := p.Runtime().GC(); err != nil {
		t.Fatal(err)
	}
	for _, v := range p.Runtime().Violations() {
		t.Errorf("fixed program still leaks:\n%s", v.Format())
	}
}

func TestLeakGrowsHeapUntilFixApplied(t *testing.T) {
	// The original symptom was OutOfMemoryError: each swap loop pins
	// another generation of temporaries.
	leaky := newProgram(t, Config{})
	for i := 0; i < 3; i++ {
		leaky.RunSwapLoop()
	}
	leaky.Runtime().GC()
	leakyLive := leaky.Runtime().Stats().Heap.LiveObjects

	fixed := newProgram(t, Config{StaticRep: true})
	for i := 0; i < 3; i++ {
		fixed.RunSwapLoop()
	}
	fixed.Runtime().GC()
	fixedLive := fixed.Runtime().Stats().Heap.LiveObjects

	if leakyLive <= fixedLive {
		t.Errorf("leak not visible in live counts: leaky %d vs fixed %d",
			leakyLive, fixedLive)
	}
}

func TestSwapActuallySwaps(t *testing.T) {
	p := newProgram(t, Config{})
	rt, th := p.rt, p.th
	f := th.PushFrame(2)
	defer th.PopFrame()
	a := p.newSObject()
	f.SetLocal(0, a)
	b := p.newSObject()
	f.SetLocal(1, b)
	ra := rt.GetRef(a, p.soRep)
	rb := rt.GetRef(b, p.soRep)
	p.swap(a, b)
	if rt.GetRef(a, p.soRep) != rb || rt.GetRef(b, p.soRep) != ra {
		t.Error("swap did not exchange Rep fields")
	}
}
