// Package swapleak reproduces the Sun Developer Network memory-leak
// program of the paper's Section 3.2.3 (also studied by Bond and
// McKinley): a class SObject with a non-static inner class Rep and a
// swap() method exchanging Rep fields. The user expected freshly allocated
// SObjects to die after swapping their Rep into an array-held SObject —
// but a non-static inner class instance carries a hidden reference to its
// enclosing instance, so every swapped-in Rep pins the temporary SObject
// that created it. GC assertions display the hidden reference:
//
//	SArray -> Object[] -> SObject -> SObject$Rep -> SObject
//
// The StaticRep configuration models the fix (a static inner class has no
// hidden outer pointer).
package swapleak

import "repro/internal/core"

// Config shapes the program.
type Config struct {
	// Objects is the array size (default 64).
	Objects int
	// StaticRep omits the hidden outer reference — the repaired program.
	StaticRep bool
	// AssertDeadAfterSwap instruments the swap loop as the paper did.
	AssertDeadAfterSwap bool
}

func (c Config) withDefaults() Config {
	if c.Objects == 0 {
		c.Objects = 64
	}
	return c
}

// Program is one configured instance bound to a runtime.
type Program struct {
	rt  *core.Runtime
	th  *core.Thread
	cfg Config

	// SObject: rep.
	SObject *core.Class
	soRep   uint16

	// SObject$Rep: outer (the hidden this$0), data.
	Rep      *core.Class
	repOuter uint16
	repData  uint16

	// SArray: objects (Object[]).
	SArray *core.Class
	saObjs uint16

	holder *core.Global
}

// New defines the classes and builds the SArray of initial SObjects.
func New(rt *core.Runtime, cfg Config) *Program {
	p := &Program{rt: rt, th: rt.MainThread(), cfg: cfg.withDefaults()}

	p.Rep = rt.DefineClass("SObject$Rep",
		core.RefField("outer"), core.DataField("data"))
	p.repOuter = p.Rep.MustFieldIndex("outer")
	p.repData = p.Rep.MustFieldIndex("data")

	p.SObject = rt.DefineClass("SObject", core.RefField("rep"))
	p.soRep = p.SObject.MustFieldIndex("rep")

	p.SArray = rt.DefineClass("SArray", core.RefField("objects"))
	p.saObjs = p.SArray.MustFieldIndex("objects")

	p.holder = rt.AddGlobal("swapleak.array")

	th := p.th
	f := th.PushFrame(2)
	defer th.PopFrame()
	sa := th.New(p.SArray)
	f.SetLocal(0, sa)
	arr := th.NewRefArray(p.cfg.Objects)
	rt.SetRef(f.Local(0), p.saObjs, arr)
	p.holder.Set(f.Local(0))

	for i := 0; i < p.cfg.Objects; i++ {
		o := p.newSObject()
		f.SetLocal(1, o)
		arr = rt.GetRef(p.holder.Get(), p.saObjs)
		rt.ArrSetRef(arr, i, f.Local(1))
	}
	return p
}

// Runtime returns the underlying runtime.
func (p *Program) Runtime() *core.Runtime { return p.rt }

// newSObject allocates an SObject together with its Rep. Instantiating a
// non-static inner class stores the enclosing instance in the hidden
// outer field — the defect's root cause.
func (p *Program) newSObject() core.Ref {
	rt, th := p.rt, p.th
	f := th.PushFrame(2)
	defer th.PopFrame()
	o := th.New(p.SObject)
	f.SetLocal(0, o)
	rep := th.New(p.Rep)
	f.SetLocal(1, rep)
	if !p.cfg.StaticRep {
		rt.SetRef(rep, p.repOuter, f.Local(0)) // this$0
	}
	rt.SetInt(rep, p.repData, 7)
	rt.SetRef(f.Local(0), p.soRep, f.Local(1))
	return f.Local(0)
}

// swap exchanges the Rep fields of two SObjects, as in the forum program.
func (p *Program) swap(a, b core.Ref) {
	rt := p.rt
	ra := rt.GetRef(a, p.soRep)
	rb := rt.GetRef(b, p.soRep)
	rt.SetRef(a, p.soRep, rb)
	rt.SetRef(b, p.soRep, ra)
}

// RunSwapLoop performs the main loop: for each array slot, allocate a
// fresh SObject, swap Reps with the array element, and drop the fresh
// object — which the user expected to be reclaimed. With
// AssertDeadAfterSwap each temporary is asserted dead after the swap.
func (p *Program) RunSwapLoop() {
	rt, th := p.rt, p.th
	arr := rt.GetRef(p.holder.Get(), p.saObjs)
	n := rt.ArrLen(arr)
	f := th.PushFrame(1)
	defer th.PopFrame()
	for i := 0; i < n; i++ {
		temp := p.newSObject()
		f.SetLocal(0, temp)
		p.swap(f.Local(0), rt.ArrGetRef(arr, i))
		if p.cfg.AssertDeadAfterSwap {
			if err := rt.AssertDead(f.Local(0)); err != nil {
				panic(err)
			}
		}
		f.SetLocal(0, core.Nil) // the temporary goes out of scope
	}
}
