package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newJack() }) }

// jack models SPEC JVM98 _228_jack (a parser generator run repeatedly on
// its own grammar): heavy token-stream churn with string payloads and
// repeated regeneration of the same output — bursts of string allocation,
// short token chains, everything dead at the end of each generation.
type jack struct {
	r *rand.Rand

	token *core.Class
	tText uint16
	tNext uint16
	tKind uint16

	grammar *core.Global // data array of production lengths
}

const (
	jackProductions = 128
	jackGenerations = 6
)

func newJack() *jack { return &jack{r: rng("jack")} }

func (w *jack) Name() string   { return "jack" }
func (w *jack) HeapWords() int { return 1 << 16 }

func (w *jack) Setup(rt *core.Runtime, th *core.Thread) {
	w.token = rt.DefineClass("jack.Token",
		core.RefField("text"), core.RefField("next"), core.DataField("kind"))
	w.tText = w.token.MustFieldIndex("text")
	w.tNext = w.token.MustFieldIndex("next")
	w.tKind = w.token.MustFieldIndex("kind")

	w.grammar = rt.AddGlobal("jack.grammar")
	g := th.NewDataArray(jackProductions)
	w.grammar.Set(g)
	for i := 0; i < jackProductions; i++ {
		rt.ArrSetData(g, i, uint64(w.r.Intn(12)+2))
	}
}

func (w *jack) Iterate(rt *core.Runtime, th *core.Thread) {
	g := w.grammar.Get()
	var sum uint64
	// The original runs the generator on the same input repeatedly.
	for gen := 0; gen < jackGenerations; gen++ {
		f := th.PushFrame(3)
		var stream core.Ref
		// Tokenize every production into a single stream.
		for p := 0; p < jackProductions; p++ {
			n := int(rt.ArrGetData(g, p))
			for i := 0; i < n; i++ {
				f.SetLocal(0, stream)
				text := th.NewString(words[w.r.Intn(len(words))])
				f.SetLocal(1, text)
				tok := th.New(w.token)
				rt.SetRef(tok, w.tText, f.Local(1))
				rt.SetRef(tok, w.tNext, f.Local(0))
				rt.SetInt(tok, w.tKind, int64(i))
				stream = tok
			}
		}
		f.SetLocal(2, stream)
		// "Generate": consume the stream.
		for t := f.Local(2); t != core.Nil; t = rt.GetRef(t, w.tNext) {
			text := rt.GetRef(t, w.tText)
			sum = checksum(sum, uint64(rt.StringLen(text))^uint64(rt.GetInt(t, w.tKind)))
		}
		th.PopFrame()
	}
	_ = sum
}
