package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newJython() }) }

// jython models the DaCapo Python interpreter: an extreme allocation rate
// of tiny short-lived objects — interpreter frames with local slots, boxed
// integers, and small tuples — almost all dead by the next collection.
// This is the nursery-churn profile: high allocation volume, minimal live
// data.
type jython struct {
	r *rand.Rand

	frame  *core.Class
	fLoc   uint16
	fDepth uint16

	boxed *core.Class
	bVal  uint16

	tuple *core.Class
	tA    uint16
	tB    uint16

	modules *core.Global
}

const (
	jythonCalls = 600
	jythonOps   = 30
)

func newJython() *jython { return &jython{r: rng("jython")} }

func (w *jython) Name() string   { return "jython" }
func (w *jython) HeapWords() int { return 1 << 16 }

func (w *jython) Setup(rt *core.Runtime, th *core.Thread) {
	w.frame = rt.DefineClass("jython.Frame",
		core.RefField("locals"), core.DataField("depth"))
	w.fLoc = w.frame.MustFieldIndex("locals")
	w.fDepth = w.frame.MustFieldIndex("depth")

	w.boxed = rt.DefineClass("jython.Int", core.DataField("val"))
	w.bVal = w.boxed.MustFieldIndex("val")

	w.tuple = rt.DefineClass("jython.Tuple2",
		core.RefField("a"), core.RefField("b"))
	w.tA = w.tuple.MustFieldIndex("a")
	w.tB = w.tuple.MustFieldIndex("b")

	// A small long-lived module table (interned constants).
	w.modules = rt.AddGlobal("jython.modules")
	consts := th.NewRefArray(256)
	w.modules.Set(consts)
	for i := 0; i < 256; i++ {
		b := th.New(w.boxed)
		rt.SetInt(b, w.bVal, int64(i))
		rt.ArrSetRef(consts, i, b)
	}
}

// call simulates one interpreted function call: allocate a frame, fill its
// locals with boxed values and tuples, "execute" arithmetic, return.
func (w *jython) call(rt *core.Runtime, th *core.Thread, depth int64, sum uint64) uint64 {
	f := th.PushFrame(2)
	defer th.PopFrame()
	fr := th.New(w.frame)
	f.SetLocal(0, fr)
	locals := th.NewRefArray(8)
	rt.SetRef(f.Local(0), w.fLoc, locals)
	rt.SetInt(f.Local(0), w.fDepth, depth)

	consts := w.modules.Get()
	for op := 0; op < jythonOps; op++ {
		locals = rt.GetRef(f.Local(0), w.fLoc)
		switch w.r.Intn(3) {
		case 0: // box an int
			b := th.New(w.boxed)
			rt.SetInt(b, w.bVal, int64(w.r.Intn(1000)))
			rt.ArrSetRef(rt.GetRef(f.Local(0), w.fLoc), w.r.Intn(8), b)
		case 1: // build a tuple of two locals / constants
			t := th.New(w.tuple)
			f.SetLocal(1, t)
			locals = rt.GetRef(f.Local(0), w.fLoc)
			rt.SetRef(t, w.tA, rt.ArrGetRef(locals, w.r.Intn(8)))
			rt.SetRef(t, w.tB, rt.ArrGetRef(consts, w.r.Intn(256)))
			rt.ArrSetRef(locals, w.r.Intn(8), f.Local(1))
		case 2: // arithmetic on a local
			v := rt.ArrGetRef(locals, w.r.Intn(8))
			if v != core.Nil && rt.ClassOf(v) == w.boxed {
				sum = checksum(sum, uint64(rt.GetInt(v, w.bVal)))
			}
		}
	}
	return sum
}

func (w *jython) Iterate(rt *core.Runtime, th *core.Thread) {
	var sum uint64
	for c := 0; c < jythonCalls; c++ {
		sum = w.call(rt, th, int64(c), sum)
	}
	_ = sum
}
