package workloads

import (
	"math/rand"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newPseudojbbWL() }) }

// pseudojbb models the fixed-workload SPEC JBB2000 heap profile for
// Figures 2/3: warehouses holding district order tables (B-trees) with a
// steady churn of order transactions. The faithful instrumented
// application — with the actual leaks the paper diagnoses — lives in
// internal/jbb; this profile keeps Figure 2/3's suite self-contained.
type pseudojbbWL struct {
	r   *rand.Rand
	kit *collections.Kit

	order  *core.Class
	oLines uint16
	oTotal uint16

	warehouses *core.Global // ref array of district order trees
	nextOrder  int64
}

const (
	pjbbDistricts  = 10
	pjbbLiveOrders = 250 // per district
	pjbbTxPerIter  = 600
)

func newPseudojbbWL() *pseudojbbWL { return &pseudojbbWL{r: rng("pseudojbb")} }

func (w *pseudojbbWL) Name() string   { return "pseudojbb" }
func (w *pseudojbbWL) HeapWords() int { return 1 << 17 }

func (w *pseudojbbWL) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.order = rt.DefineClass("pseudojbb.Order",
		core.RefField("lines"), core.DataField("total"))
	w.oLines = w.order.MustFieldIndex("lines")
	w.oTotal = w.order.MustFieldIndex("total")

	w.warehouses = rt.AddGlobal("pseudojbb.districts")
	districts := th.NewRefArray(pjbbDistricts)
	w.warehouses.Set(districts)
	for d := 0; d < pjbbDistricts; d++ {
		f := th.PushFrame(1)
		tree := w.kit.NewTree(th)
		f.SetLocal(0, tree)
		rt.ArrSetRef(districts, d, f.Local(0))
		th.PopFrame()
	}
	// Warm the order tables to their steady-state size.
	for i := 0; i < pjbbDistricts*pjbbLiveOrders; i++ {
		w.newOrderTx(rt, th)
	}
}

// newOrderTx creates an order with order lines and files it in a district.
func (w *pseudojbbWL) newOrderTx(rt *core.Runtime, th *core.Thread) {
	f := th.PushFrame(1)
	defer th.PopFrame()
	o := th.New(w.order)
	f.SetLocal(0, o)
	lines := th.NewDataArray(10)
	rt.SetRef(f.Local(0), w.oLines, lines)
	total := int64(0)
	for i := 0; i < 10; i++ {
		v := int64(w.r.Intn(500))
		rt.ArrSetData(lines, i, uint64(v))
		total += v
	}
	rt.SetInt(f.Local(0), w.oTotal, total)

	id := w.nextOrder
	w.nextOrder++
	tree := rt.ArrGetRef(w.warehouses.Get(), int(id)%pjbbDistricts)
	w.kit.TreePut(th, tree, id, f.Local(0))
}

// deliveryTx completes (removes) the oldest orders of one district.
func (w *pseudojbbWL) deliveryTx(rt *core.Runtime, d int) uint64 {
	tree := rt.ArrGetRef(w.warehouses.Get(), d)
	var sum uint64
	for w.kit.TreeLen(tree) > pjbbLiveOrders {
		// Remove the smallest (oldest) key.
		var oldest int64 = -1
		w.kit.TreeEach(tree, func(key int64, _ core.Ref) {
			if oldest < 0 {
				oldest = key
			}
		})
		if o, ok := w.kit.TreeGet(tree, oldest); ok {
			sum = checksum(sum, uint64(rt.GetInt(o, w.oTotal)))
		}
		w.kit.TreeRemove(tree, oldest)
	}
	return sum
}

func (w *pseudojbbWL) Iterate(rt *core.Runtime, th *core.Thread) {
	var sum uint64
	for tx := 0; tx < pjbbTxPerIter; tx++ {
		w.newOrderTx(rt, th)
		if tx%pjbbDistricts == 0 {
			sum = checksum(sum, w.deliveryTx(rt, w.r.Intn(pjbbDistricts)))
		}
	}
	// Final delivery sweep keeps every district at steady state.
	for d := 0; d < pjbbDistricts; d++ {
		sum = checksum(sum, w.deliveryTx(rt, d))
	}
	_ = sum
}
