package workloads

import (
	"testing"

	"repro/internal/core"
)

func TestSuiteComposition(t *testing.T) {
	names := Names()
	if len(names) < 14 {
		t.Fatalf("suite has %d workloads, want >= 14", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate workload %q", n)
		}
		seen[n] = true
		if ByName(n) == nil {
			t.Errorf("ByName(%q) = nil", n)
		}
	}
	// The paper's headline benchmarks must be present.
	for _, n := range []string{"bloat", "db", "pseudojbb", "lusearch", "compress", "mpegaudio"} {
		if !seen[n] {
			t.Errorf("suite missing %q", n)
		}
	}
	if ByName("no-such-benchmark") != nil {
		t.Error("ByName on unknown name returned non-nil")
	}
}

func TestFactoriesReturnFreshInstances(t *testing.T) {
	for _, f := range Suite() {
		a, b := f(), f()
		if a == b {
			t.Errorf("%s: factory returned a shared instance", a.Name())
		}
		if a.HeapWords() <= 0 {
			t.Errorf("%s: HeapWords = %d", a.Name(), a.HeapWords())
		}
	}
}

// runWorkload executes setup plus a few iterations in the given mode and
// returns the runtime for inspection.
func runWorkload(t *testing.T, f Factory, mode core.Mode, iters int) *core.Runtime {
	t.Helper()
	w := f()
	rt := core.New(core.Config{HeapWords: w.HeapWords(), Mode: mode})
	th := rt.MainThread()
	w.Setup(rt, th)
	for i := 0; i < iters; i++ {
		w.Iterate(rt, th)
	}
	return rt
}

func TestWorkloadsRunBaseMode(t *testing.T) {
	for _, f := range Suite() {
		f := f
		t.Run(f().Name()+"/base", func(t *testing.T) {
			t.Parallel()
			rt := runWorkload(t, f, core.Base, 3)
			st := rt.Stats()
			if st.Heap.TotalAllocs == 0 {
				t.Error("workload allocated nothing")
			}
			if st.Heap.LiveWords > st.Heap.CapacityWords {
				t.Error("accounting out of range")
			}
		})
	}
}

func TestWorkloadsRunInfrastructureMode(t *testing.T) {
	for _, f := range Suite() {
		f := f
		t.Run(f().Name()+"/infra", func(t *testing.T) {
			t.Parallel()
			rt := runWorkload(t, f, core.Infrastructure, 3)
			// Workloads register no assertions: the infrastructure must
			// report no violations.
			if n := len(rt.Violations()); n != 0 {
				t.Errorf("spurious violations: %d", n)
			}
		})
	}
}

func TestWorkloadsProvokeGC(t *testing.T) {
	// Across several iterations every workload's allocation volume must
	// exceed its heap, so automatic collections run — otherwise Figures
	// 2/3 would measure nothing.
	for _, f := range Suite() {
		f := f
		t.Run(f().Name(), func(t *testing.T) {
			t.Parallel()
			w := f()
			rt := core.New(core.Config{HeapWords: w.HeapWords(), Mode: core.Base})
			th := rt.MainThread()
			w.Setup(rt, th)
			for i := 0; i < 12; i++ {
				w.Iterate(rt, th)
				if rt.Stats().GC.Collections > 0 {
					return
				}
			}
			t.Errorf("%s never triggered a collection in 12 iterations", w.Name())
		})
	}
}

func TestWorkloadMarkingEquivalence(t *testing.T) {
	// Base and Infrastructure collectors must retain the same number of
	// objects for the same (deterministic) workload.
	for _, name := range []string{"antlr", "bloat", "hsqldb", "jess"} {
		f := ByName(name)
		if f == nil {
			t.Fatalf("missing %q", name)
		}
		t.Run(name, func(t *testing.T) {
			rtBase := runWorkload(t, f, core.Base, 2)
			rtInfra := runWorkload(t, f, core.Infrastructure, 2)
			if err := rtBase.GC(); err != nil {
				t.Fatal(err)
			}
			if err := rtInfra.GC(); err != nil {
				t.Fatal(err)
			}
			b := rtBase.Stats().Heap.LiveObjects
			i := rtInfra.Stats().Heap.LiveObjects
			if b != i {
				t.Errorf("live objects differ: base %d vs infra %d", b, i)
			}
		})
	}
}
