package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newAntlr() }) }

// antlr models the DaCapo parser generator: per iteration it "parses"
// a batch of files — tokenizing into short-lived token chains and building
// deep abstract-syntax trees that are walked once and discarded. A
// long-lived grammar (rule table) persists across iterations. The profile
// is tree-heavy: deep pointer chains with modest fan-out and high turnover.
type antlr struct {
	r *rand.Rand

	node  *core.Class
	token *core.Class
	rule  *core.Class

	nLeft, nRight, nTok uint16
	tNext, tKind        uint16
	rBody               uint16

	grammar *core.Global
}

func newAntlr() *antlr { return &antlr{r: rng("antlr")} }

func (w *antlr) Name() string   { return "antlr" }
func (w *antlr) HeapWords() int { return 1 << 16 }

func (w *antlr) Setup(rt *core.Runtime, th *core.Thread) {
	w.token = rt.DefineClass("antlr.Token",
		core.RefField("next"), core.DataField("kind"))
	w.tNext = w.token.MustFieldIndex("next")
	w.tKind = w.token.MustFieldIndex("kind")

	w.node = rt.DefineClass("antlr.ASTNode",
		core.RefField("left"), core.RefField("right"), core.RefField("tok"))
	w.nLeft = w.node.MustFieldIndex("left")
	w.nRight = w.node.MustFieldIndex("right")
	w.nTok = w.node.MustFieldIndex("tok")

	w.rule = rt.DefineClass("antlr.Rule", core.RefField("body"), core.DataField("id"))
	w.rBody = w.rule.MustFieldIndex("body")

	// Long-lived grammar: 200 rules, each holding a small template tree.
	w.grammar = rt.AddGlobal("antlr.grammar")
	rules := th.NewRefArray(200)
	w.grammar.Set(rules)
	for i := 0; i < 200; i++ {
		f := th.PushFrame(1)
		rule := th.New(w.rule)
		f.SetLocal(0, rule)
		body := w.buildTree(rt, th, 4)
		rt.SetRef(rule, w.rBody, body)
		rt.ArrSetRef(rules, i, f.Local(0))
		th.PopFrame()
	}
}

// buildTree builds a random binary tree of the given depth, returning its
// root. The tree is pinned bottom-up through frame slots.
func (w *antlr) buildTree(rt *core.Runtime, th *core.Thread, depth int) core.Ref {
	if depth == 0 {
		return core.Nil
	}
	f := th.PushFrame(3)
	defer th.PopFrame()
	left := w.buildTree(rt, th, depth-1)
	f.SetLocal(0, left)
	right := w.buildTree(rt, th, depth-1)
	f.SetLocal(1, right)
	tok := th.New(w.token)
	rt.SetInt(tok, w.tKind, int64(w.r.Intn(64)))
	f.SetLocal(2, tok)
	n := th.New(w.node)
	rt.SetRef(n, w.nLeft, f.Local(0))
	rt.SetRef(n, w.nRight, f.Local(1))
	rt.SetRef(n, w.nTok, f.Local(2))
	return n
}

func (w *antlr) Iterate(rt *core.Runtime, th *core.Thread) {
	var sum uint64
	for file := 0; file < 12; file++ {
		f := th.PushFrame(2)

		// Tokenize: a short-lived chain of ~300 tokens.
		var head core.Ref
		for i := 0; i < 300; i++ {
			f.SetLocal(0, head)
			tok := th.New(w.token)
			rt.SetRef(tok, w.tNext, f.Local(0))
			rt.SetInt(tok, w.tKind, int64(w.r.Intn(64)))
			head = tok
		}
		f.SetLocal(0, head)

		// Parse: a deep AST (depth 9 => ~500 nodes), walked then dropped.
		ast := w.buildTree(rt, th, 9)
		f.SetLocal(1, ast)
		sum = w.walk(rt, f.Local(1), sum)

		th.PopFrame()
	}
	_ = sum
}

// walk folds token kinds into a checksum.
func (w *antlr) walk(rt *core.Runtime, n core.Ref, sum uint64) uint64 {
	if n == core.Nil {
		return sum
	}
	sum = w.walk(rt, rt.GetRef(n, w.nLeft), sum)
	if tok := rt.GetRef(n, w.nTok); tok != core.Nil {
		sum = checksum(sum, uint64(rt.GetInt(tok, w.tKind)))
	}
	return w.walk(rt, rt.GetRef(n, w.nRight), sum)
}
