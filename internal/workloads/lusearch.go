package workloads

import (
	"math/rand"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newLusearchWL() }) }

// lusearch models the DaCapo text-search benchmark: queries against a
// fixed, prebuilt inverted index. Per query it fetches posting lists and
// intersects them into short-lived result lists — a read-mostly profile
// over a large stable heap with small bursts of transient allocation.
// (The full multi-threaded search engine with the paper's IndexSearcher
// case study lives in internal/lusearch; this workload is the Figure 2/3
// heap profile.)
type lusearchWL struct {
	r   *rand.Rand
	kit *collections.Kit

	hit   *core.Class
	hDoc  uint16
	hRank uint16

	index *core.Global
	terms int64
}

const (
	lusearchDocs      = 3000
	lusearchQueryPerI = 400
)

func newLusearchWL() *lusearchWL { return &lusearchWL{r: rng("lusearch")} }

func (w *lusearchWL) Name() string   { return "lusearch" }
func (w *lusearchWL) HeapWords() int { return 208 << 10 }

func (w *lusearchWL) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.hit = rt.DefineClass("lusearch.Hit",
		core.DataField("doc"), core.DataField("rank"))
	w.hDoc = w.hit.MustFieldIndex("doc")
	w.hRank = w.hit.MustFieldIndex("rank")

	w.terms = int64(len(words) * 6)
	w.index = rt.AddGlobal("lusearch.index")
	w.index.Set(w.kit.NewMap(th))
	idx := w.index.Get()

	// Build the fixed index: each doc contributes a handful of terms.
	for doc := int64(0); doc < lusearchDocs; doc++ {
		for i := 0; i < 6; i++ {
			term := int64(w.r.Int63n(w.terms))
			list, ok := w.kit.MapGet(idx, term)
			if !ok {
				list = w.kit.NewList(th)
				w.kit.MapPut(th, idx, term, list)
			}
			f := th.PushFrame(1)
			h := th.New(w.hit)
			rt.SetInt(h, w.hDoc, doc)
			rt.SetInt(h, w.hRank, int64(w.r.Intn(100)))
			f.SetLocal(0, h)
			list, _ = w.kit.MapGet(idx, term)
			w.kit.ListAdd(th, list, f.Local(0))
			th.PopFrame()
		}
	}
}

func (w *lusearchWL) Iterate(rt *core.Runtime, th *core.Thread) {
	idx := w.index.Get()
	var sum uint64
	for q := 0; q < lusearchQueryPerI; q++ {
		// Two-term conjunctive query: intersect posting lists into a
		// short-lived result list.
		t1 := int64(w.r.Int63n(w.terms))
		t2 := int64(w.r.Int63n(w.terms))
		l1, ok1 := w.kit.MapGet(idx, t1)
		l2, ok2 := w.kit.MapGet(idx, t2)
		if !ok1 || !ok2 {
			continue
		}
		docs2 := map[int64]bool{}
		w.kit.ListEach(l2, func(_ int, h core.Ref) {
			docs2[rt.GetInt(h, w.hDoc)] = true
		})

		f := th.PushFrame(2)
		results := w.kit.NewList(th)
		f.SetLocal(0, results)
		w.kit.ListEach(l1, func(_ int, h core.Ref) {
			if docs2[rt.GetInt(h, w.hDoc)] {
				// Materialize a fresh scored hit for the result set.
				scored := th.New(w.hit)
				rt.SetInt(scored, w.hDoc, rt.GetInt(h, w.hDoc))
				rt.SetInt(scored, w.hRank, rt.GetInt(h, w.hRank)*2)
				f.SetLocal(1, scored)
				w.kit.ListAdd(th, f.Local(0), f.Local(1))
			}
		})
		w.kit.ListEach(f.Local(0), func(_ int, h core.Ref) {
			sum = checksum(sum, uint64(rt.GetInt(h, w.hRank)))
		})
		th.PopFrame()
	}
	_ = sum
}
