package workloads

import (
	"math/rand"
	"sort"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newDBWL() }) }

// db models SPEC JVM98 _209_db: a long-lived in-memory database of Entry
// records (each holding a small item array) under a stream of add, delete,
// find and sort operations. Big stable live set with low allocation rate —
// the workload the paper instruments most heavily in Figures 4/5 (the
// instrumented application lives in internal/minidb; this is the plain
// Figure 2/3 profile).
type dbWL struct {
	r   *rand.Rand
	kit *collections.Kit

	entry  *core.Class
	eItems uint16
	eKey   uint16

	database *core.Global
	nextKey  int64
}

const (
	dbEntries  = 3000
	dbOpsPerIt = 120
)

func newDBWL() *dbWL { return &dbWL{r: rng("db")} }

func (w *dbWL) Name() string   { return "db" }
func (w *dbWL) HeapWords() int { return 112 << 10 }

func (w *dbWL) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.entry = rt.DefineClass("db.Entry",
		core.RefField("items"), core.DataField("key"))
	w.eItems = w.entry.MustFieldIndex("items")
	w.eKey = w.entry.MustFieldIndex("key")

	w.database = rt.AddGlobal("db.database")
	w.database.Set(w.kit.NewList(th))
	for i := 0; i < dbEntries; i++ {
		w.addEntry(rt, th)
	}
}

func (w *dbWL) addEntry(rt *core.Runtime, th *core.Thread) {
	f := th.PushFrame(1)
	defer th.PopFrame()
	e := th.New(w.entry)
	f.SetLocal(0, e)
	items := th.NewDataArray(8)
	rt.SetRef(f.Local(0), w.eItems, items)
	for i := 0; i < 8; i++ {
		rt.ArrSetData(items, i, uint64(w.r.Int63n(1<<30)))
	}
	rt.SetInt(f.Local(0), w.eKey, w.nextKey)
	w.nextKey++
	w.kit.ListAdd(th, w.database.Get(), f.Local(0))
}

func (w *dbWL) Iterate(rt *core.Runtime, th *core.Thread) {
	db := w.database.Get()
	var sum uint64
	for op := 0; op < dbOpsPerIt; op++ {
		switch w.r.Intn(8) {
		case 0, 1: // add, evicting beyond the cap
			w.addEntry(rt, th)
			if n := w.kit.ListLen(db); n > dbEntries {
				w.kit.ListRemoveAt(db, w.r.Intn(n))
			}
		case 2, 3: // delete (the _209_db null-assignment idiom)
			if n := w.kit.ListLen(db); n > dbEntries/2 {
				w.kit.ListRemoveAt(db, w.r.Intn(n))
			}
		case 4, 5: // find by key: linear scan, as in the original
			want := w.nextKey - int64(w.r.Intn(dbEntries)) - 1
			w.kit.ListEach(db, func(_ int, e core.Ref) {
				if rt.GetInt(e, w.eKey) == want {
					sum = checksum(sum, uint64(want))
				}
			})
		default: // sort by an item column into a transient managed index
			n := w.kit.ListLen(db)
			f := th.PushFrame(1)
			scratch := th.NewRefArray(n)
			f.SetLocal(0, scratch)
			cols := make([]uint64, 0, n)
			w.kit.ListEach(db, func(i int, e core.Ref) {
				rt.ArrSetRef(scratch, i, e)
				items := rt.GetRef(e, w.eItems)
				cols = append(cols, rt.ArrGetData(items, 0))
			})
			sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
			if len(cols) > 0 {
				sum = checksum(sum, cols[0])
			}
			th.PopFrame()
		}
	}
	_ = sum
}
