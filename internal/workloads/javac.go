package workloads

import (
	"math/rand"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newJavac() }) }

// javac models SPEC JVM98 _213_javac: per iteration it "compiles" classes
// — building an AST, resolving names against a slowly growing long-lived
// symbol table, allocating type records, and emitting bytecode into data
// arrays. Mixed profile: transient trees, persistent symbols, data-array
// output.
type javac struct {
	r   *rand.Rand
	kit *collections.Kit

	sym   *core.Class
	sName uint16
	sType uint16

	node  *core.Class
	nKids uint16
	nSym  uint16

	symtab *core.Global
	nextID int64
}

const (
	javacClasses   = 4
	javacTreeDepth = 6
	javacSymCap    = 2500
)

func newJavac() *javac { return &javac{r: rng("javac")} }

func (w *javac) Name() string   { return "javac" }
func (w *javac) HeapWords() int { return 1 << 17 }

func (w *javac) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.sym = rt.DefineClass("javac.Symbol",
		core.RefField("name"), core.DataField("type"))
	w.sName = w.sym.MustFieldIndex("name")
	w.sType = w.sym.MustFieldIndex("type")

	w.node = rt.DefineClass("javac.Tree",
		core.RefField("children"), core.RefField("sym"))
	w.nKids = w.node.MustFieldIndex("children")
	w.nSym = w.node.MustFieldIndex("sym")

	w.symtab = rt.AddGlobal("javac.symtab")
	w.symtab.Set(w.kit.NewMap(th))
}

// declare interns a symbol, evicting old ones past the cap.
func (w *javac) declare(rt *core.Runtime, th *core.Thread) core.Ref {
	tab := w.symtab.Get()
	id := w.nextID
	w.nextID++
	f := th.PushFrame(2)
	defer th.PopFrame()
	name := th.NewString(sentence(w.r, 1))
	f.SetLocal(0, name)
	s := th.New(w.sym)
	rt.SetRef(s, w.sName, f.Local(0))
	rt.SetInt(s, w.sType, int64(w.r.Intn(16)))
	f.SetLocal(1, s)
	w.kit.MapPut(th, tab, id, f.Local(1))
	if id >= javacSymCap {
		w.kit.MapRemove(tab, id-javacSymCap)
	}
	return f.Local(1)
}

// parse builds an AST whose leaves resolve to symbols (existing or new).
func (w *javac) parse(rt *core.Runtime, th *core.Thread, depth int) core.Ref {
	f := th.PushFrame(2)
	defer th.PopFrame()
	n := th.New(w.node)
	f.SetLocal(0, n)
	if depth == 0 || w.r.Intn(5) == 0 {
		// Leaf: resolve against the symbol table (or declare).
		tab := w.symtab.Get()
		var s core.Ref
		if w.nextID > 0 && w.r.Intn(3) > 0 {
			s, _ = w.kit.MapGet(tab, w.nextID-w.r.Int63n(min64(w.nextID, javacSymCap))-1)
		}
		if s == core.Nil {
			s = w.declare(rt, th)
		}
		rt.SetRef(f.Local(0), w.nSym, s)
		return f.Local(0)
	}
	kids := th.NewRefArray(3)
	rt.SetRef(f.Local(0), w.nKids, kids)
	for i := 0; i < 3; i++ {
		c := w.parse(rt, th, depth-1)
		f.SetLocal(1, c)
		rt.ArrSetRef(rt.GetRef(f.Local(0), w.nKids), i, f.Local(1))
	}
	return f.Local(0)
}

// emit walks the AST producing "bytecode" words.
func (w *javac) emit(rt *core.Runtime, th *core.Thread, ast core.Ref) uint64 {
	f := th.PushFrame(2)
	defer th.PopFrame()
	f.SetLocal(0, ast)
	code := th.NewDataArray(512)
	f.SetLocal(1, code)
	pc := 0
	var walk func(n core.Ref)
	walk = func(n core.Ref) {
		if n == core.Nil || pc >= 512 {
			return
		}
		if s := rt.GetRef(n, w.nSym); s != core.Nil {
			rt.ArrSetData(code, pc, uint64(rt.GetInt(s, w.sType)))
			pc++
		}
		kids := rt.GetRef(n, w.nKids)
		if kids != core.Nil {
			for i, c := 0, rt.ArrLen(kids); i < c; i++ {
				walk(rt.ArrGetRef(kids, i))
			}
		}
	}
	walk(f.Local(0))
	var sum uint64
	for i := 0; i < pc; i++ {
		sum = checksum(sum, rt.ArrGetData(code, i))
	}
	return sum
}

func (w *javac) Iterate(rt *core.Runtime, th *core.Thread) {
	var sum uint64
	for c := 0; c < javacClasses; c++ {
		f := th.PushFrame(1)
		ast := w.parse(rt, th, javacTreeDepth)
		f.SetLocal(0, ast)
		sum = checksum(sum, w.emit(rt, th, f.Local(0)))
		th.PopFrame()
	}
	_ = sum
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
