package workloads

import (
	"math/rand"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newHsqldb() }) }

// hsqldb models the DaCapo in-memory SQL engine: rows live in a long-lived
// B-tree primary index; iterations run transactions that insert batches,
// update rows in place, delete ranges, and range-scan. Container-dominated
// heap with steady row churn — the profile that stresses interior-pointer-
// dense B-tree nodes.
type hsqldb struct {
	r   *rand.Rand
	kit *collections.Kit

	row    *core.Class
	rCols  uint16
	rScore uint16

	table   *core.Global
	nextKey int64
	minKey  int64 // oldest key possibly still present
}

const (
	hsqldbRows    = 4000
	hsqldbTxPerIt = 60
	hsqldbBatch   = 40
)

func newHsqldb() *hsqldb { return &hsqldb{r: rng("hsqldb")} }

func (w *hsqldb) Name() string   { return "hsqldb" }
func (w *hsqldb) HeapWords() int { return 150 << 10 }

func (w *hsqldb) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.row = rt.DefineClass("hsqldb.Row",
		core.RefField("cols"), core.DataField("score"))
	w.rCols = w.row.MustFieldIndex("cols")
	w.rScore = w.row.MustFieldIndex("score")

	w.table = rt.AddGlobal("hsqldb.table")
	w.table.Set(w.kit.NewTree(th))
	for i := 0; i < hsqldbRows; i++ {
		w.insertRow(rt, th)
	}
}

// insertRow adds one row with a small column payload.
func (w *hsqldb) insertRow(rt *core.Runtime, th *core.Thread) {
	f := th.PushFrame(1)
	defer th.PopFrame()
	row := th.New(w.row)
	f.SetLocal(0, row)
	cols := th.NewDataArray(6)
	rt.SetRef(f.Local(0), w.rCols, cols)
	for c := 0; c < 6; c++ {
		rt.ArrSetData(cols, c, uint64(w.r.Int63n(1<<30)))
	}
	rt.SetInt(f.Local(0), w.rScore, int64(w.r.Intn(100)))
	w.kit.TreePut(th, w.table.Get(), w.nextKey, f.Local(0))
	w.nextKey++
}

func (w *hsqldb) Iterate(rt *core.Runtime, th *core.Thread) {
	table := w.table.Get()
	var sum uint64
	for tx := 0; tx < hsqldbTxPerIt; tx++ {
		switch w.r.Intn(4) {
		case 0: // INSERT batch, trimming the oldest rows beyond the cap
			for i := 0; i < hsqldbBatch; i++ {
				w.insertRow(rt, th)
			}
			for w.kit.TreeLen(table) > hsqldbRows {
				if !w.kit.TreeRemove(table, w.minKey) {
					w.minKey++
					continue
				}
				w.minKey++
			}
		case 1: // DELETE range
			start := w.nextKey - int64(w.r.Intn(hsqldbRows))
			for k := start; k < start+hsqldbBatch; k++ {
				w.kit.TreeRemove(table, k)
			}
		case 2: // UPDATE in place
			for i := 0; i < hsqldbBatch; i++ {
				key := w.nextKey - int64(w.r.Intn(hsqldbRows)) - 1
				if row, ok := w.kit.TreeGet(table, key); ok {
					rt.SetInt(row, w.rScore, rt.GetInt(row, w.rScore)+1)
				}
			}
		case 3: // SELECT: full scan aggregation
			w.kit.TreeEach(table, func(_ int64, row core.Ref) {
				sum = checksum(sum, uint64(rt.GetInt(row, w.rScore)))
			})
		}
	}
	_ = sum
}
