// Package workloads provides the synthetic benchmark suite used to
// reproduce Figures 2 and 3 of the paper (Base vs Infrastructure overhead
// across DaCapo 2006, SPEC JVM98 and pseudojbb).
//
// The original benchmarks are Java applications we cannot run on this
// runtime, so each workload here is a synthetic mutator named after the
// benchmark whose heap profile it models: the same axes that determine
// trace-loop overhead — allocation rate, object size mix, pointer density,
// fraction of long-lived data, and graph shape (trees, cyclic graphs, flat
// arrays, token streams) — are varied per workload. Figures 2/3 measure
// *relative* overhead of the assertion infrastructure, so heap-shape
// diversity, not application logic, is what the substitution must preserve
// (see DESIGN.md).
//
// Every workload allocates exclusively on the managed heap through the
// core API, keeps its long-lived data reachable from registered globals,
// and is deterministic (seeded PRNG).
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Workload is one synthetic benchmark.
type Workload interface {
	// Name returns the benchmark name used in figure rows.
	Name() string
	// HeapWords returns the heap size to run with, chosen roughly at
	// twice the workload's minimum live size (the paper's methodology).
	HeapWords() int
	// Setup defines classes and builds the long-lived data. Called once,
	// before timing starts.
	Setup(rt *core.Runtime, th *core.Thread)
	// Iterate runs one benchmark iteration (the timed unit).
	Iterate(rt *core.Runtime, th *core.Thread)
}

// Factory creates a fresh workload instance (workloads are stateful and
// bound to one runtime after Setup).
type Factory func() Workload

var registry []Factory
var registryNames = map[string]Factory{}

// register adds a workload factory to the suite in declaration order.
func register(f Factory) {
	registry = append(registry, f)
	registryNames[f().Name()] = f
}

// Suite returns factories for the full benchmark suite, in the order the
// paper's figures list them.
func Suite() []Factory {
	out := make([]Factory, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the factory for one benchmark, or nil.
func ByName(name string) Factory { return registryNames[name] }

// Names lists the suite's benchmark names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, f := range registry {
		out[i] = f().Name()
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared helpers

// rng returns a deterministic source per workload.
func rng(name string) *rand.Rand {
	var seed int64
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	return rand.New(rand.NewSource(seed))
}

// words is a tiny corpus for string-bearing workloads.
var words = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"pack", "my", "box", "with", "five", "dozen", "liquor", "jugs",
	"sphinx", "of", "black", "quartz", "judge", "vow", "waltz", "nymph",
}

// sentence builds a deterministic pseudo-sentence.
func sentence(r *rand.Rand, n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += words[r.Intn(len(words))]
	}
	return s
}

// checksum folds a value into a running checksum; workloads consume their
// own outputs so the work cannot be optimized away and corruption surfaces
// as checksum drift in tests.
func checksum(acc, v uint64) uint64 {
	acc ^= v
	acc *= 0x100000001b3
	return acc
}

// verify compares per-iteration checksums across iterations; used by the
// workload tests to detect heap corruption under GC pressure.
type verify struct {
	first uint64
	set   bool
}

func (v *verify) note(sum uint64) error {
	if !v.set {
		v.first, v.set = sum, true
		return nil
	}
	if sum != v.first {
		return fmt.Errorf("checksum drift: %#x != %#x", sum, v.first)
	}
	return nil
}
