package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newMtrt() }) }

// mtrt models SPEC JVM98 _227_mtrt (multithreaded ray tracer): a small
// long-lived scene, with ray shooting allocating enormous numbers of
// short-lived vector and hit-record objects — high allocation rate of tiny
// uniform objects that die immediately.
type mtrt struct {
	r *rand.Rand

	vec        *core.Class
	vX, vY, vZ uint16

	hit   *core.Class
	hDist uint16
	hObj  uint16

	sphere  *core.Class
	sCenter uint16
	sRad    uint16

	scene *core.Global
}

const (
	mtrtSpheres = 64
	mtrtRays    = 2500
)

func newMtrt() *mtrt { return &mtrt{r: rng("mtrt")} }

func (w *mtrt) Name() string   { return "mtrt" }
func (w *mtrt) HeapWords() int { return 1 << 16 }

func (w *mtrt) Setup(rt *core.Runtime, th *core.Thread) {
	w.vec = rt.DefineClass("mtrt.Vec",
		core.DataField("x"), core.DataField("y"), core.DataField("z"))
	w.vX = w.vec.MustFieldIndex("x")
	w.vY = w.vec.MustFieldIndex("y")
	w.vZ = w.vec.MustFieldIndex("z")

	w.hit = rt.DefineClass("mtrt.Hit",
		core.DataField("dist"), core.RefField("obj"))
	w.hDist = w.hit.MustFieldIndex("dist")
	w.hObj = w.hit.MustFieldIndex("obj")

	w.sphere = rt.DefineClass("mtrt.Sphere",
		core.RefField("center"), core.DataField("radius"))
	w.sCenter = w.sphere.MustFieldIndex("center")
	w.sRad = w.sphere.MustFieldIndex("radius")

	w.scene = rt.AddGlobal("mtrt.scene")
	scene := th.NewRefArray(mtrtSpheres)
	w.scene.Set(scene)
	for i := 0; i < mtrtSpheres; i++ {
		f := th.PushFrame(1)
		c := w.newVec(rt, th, int64(w.r.Intn(1000)), int64(w.r.Intn(1000)), int64(w.r.Intn(1000)))
		f.SetLocal(0, c)
		s := th.New(w.sphere)
		rt.SetRef(s, w.sCenter, f.Local(0))
		rt.SetInt(s, w.sRad, int64(w.r.Intn(50)+1))
		rt.ArrSetRef(scene, i, s)
		th.PopFrame()
	}
}

func (w *mtrt) newVec(rt *core.Runtime, th *core.Thread, x, y, z int64) core.Ref {
	v := th.New(w.vec)
	rt.SetInt(v, w.vX, x)
	rt.SetInt(v, w.vY, y)
	rt.SetInt(v, w.vZ, z)
	return v
}

func (w *mtrt) Iterate(rt *core.Runtime, th *core.Thread) {
	scene := w.scene.Get()
	var sum uint64
	for ray := 0; ray < mtrtRays; ray++ {
		f := th.PushFrame(3)
		origin := w.newVec(rt, th, int64(w.r.Intn(1000)), int64(w.r.Intn(1000)), 0)
		f.SetLocal(0, origin)
		dir := w.newVec(rt, th, int64(w.r.Intn(100))-50, int64(w.r.Intn(100))-50, 100)
		f.SetLocal(1, dir)

		// Intersect against every sphere; keep the nearest hit record.
		var best core.Ref
		for i := 0; i < mtrtSpheres; i++ {
			s := rt.ArrGetRef(scene, i)
			c := rt.GetRef(s, w.sCenter)
			o := f.Local(0)
			dx := rt.GetInt(c, w.vX) - rt.GetInt(o, w.vX)
			dy := rt.GetInt(c, w.vY) - rt.GetInt(o, w.vY)
			d2 := dx*dx + dy*dy
			rad := rt.GetInt(s, w.sRad)
			if d2 > rad*rad*400 {
				continue // miss
			}
			f.SetLocal(2, best)
			h := th.New(w.hit)
			rt.SetInt(h, w.hDist, d2)
			rt.SetRef(h, w.hObj, s)
			prev := f.Local(2)
			if prev == core.Nil || rt.GetInt(h, w.hDist) < rt.GetInt(prev, w.hDist) {
				best = h
			} else {
				best = prev
			}
		}
		if best != core.Nil {
			sum = checksum(sum, uint64(rt.GetInt(best, w.hDist)))
		}
		th.PopFrame()
	}
	_ = sum
}
