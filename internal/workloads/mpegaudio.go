package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newMpegaudio() }) }

// mpegaudio models SPEC JVM98 _222_mpegaudio: pure signal-processing over
// fixed buffers — long-lived filter tables, per-frame scratch arrays, and
// virtually no pointer structure or garbage. The quietest GC profile in
// the suite; in the paper it shows the smallest infrastructure overhead.
type mpegaudio struct {
	r *rand.Rand

	filters *core.Global // data array of filter coefficients
}

const (
	mpegFilterLen = 512
	mpegFrames    = 40
	mpegFrameLen  = 1152
)

func newMpegaudio() *mpegaudio { return &mpegaudio{r: rng("mpegaudio")} }

func (w *mpegaudio) Name() string   { return "mpegaudio" }
func (w *mpegaudio) HeapWords() int { return 1 << 15 }

func (w *mpegaudio) Setup(rt *core.Runtime, th *core.Thread) {
	w.filters = rt.AddGlobal("mpeg.filters")
	filters := th.NewDataArray(mpegFilterLen)
	w.filters.Set(filters)
	for i := 0; i < mpegFilterLen; i++ {
		rt.ArrSetData(filters, i, uint64(w.r.Intn(1<<16)))
	}
}

func (w *mpegaudio) Iterate(rt *core.Runtime, th *core.Thread) {
	filters := w.filters.Get()
	var sum uint64
	for frame := 0; frame < mpegFrames; frame++ {
		f := th.PushFrame(1)
		buf := th.NewDataArray(mpegFrameLen)
		f.SetLocal(0, buf)
		// Synthesize a frame and run the "subband filter".
		acc := uint64(frame + 1)
		for i := 0; i < mpegFrameLen; i++ {
			coef := rt.ArrGetData(filters, i%mpegFilterLen)
			acc = acc*6364136223846793005 + 1442695040888963407
			rt.ArrSetData(buf, i, (acc>>33)*coef)
		}
		for i := 0; i < mpegFrameLen; i += 7 {
			sum = checksum(sum, rt.ArrGetData(buf, i))
		}
		th.PopFrame()
	}
	_ = sum
}
