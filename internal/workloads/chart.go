package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newChart() }) }

// chart models the DaCapo plotting benchmark: iterations build data series
// (arrays of point objects), run a "render" pass that aggregates them, and
// retain a rolling window of recent charts — a medium-lifetime profile
// between pure churn and permanent data.
type chart struct {
	r *rand.Rand

	point  *core.Class
	pX, pY uint16

	series *core.Class
	sData  uint16
	sNext  uint16

	window *core.Global
	cursor int
}

const (
	chartWindow  = 16  // charts retained
	chartSeries  = 6   // series per chart
	chartPoints  = 256 // points per series
	chartPerIter = 4   // charts built per iteration
)

func newChart() *chart { return &chart{r: rng("chart")} }

func (w *chart) Name() string   { return "chart" }
func (w *chart) HeapWords() int { return 192 << 10 }

func (w *chart) Setup(rt *core.Runtime, th *core.Thread) {
	w.point = rt.DefineClass("chart.Point",
		core.DataField("x"), core.DataField("y"))
	w.pX = w.point.MustFieldIndex("x")
	w.pY = w.point.MustFieldIndex("y")

	w.series = rt.DefineClass("chart.Series",
		core.RefField("data"), core.RefField("next"))
	w.sData = w.series.MustFieldIndex("data")
	w.sNext = w.series.MustFieldIndex("next")

	w.window = rt.AddGlobal("chart.window")
	w.window.Set(th.NewRefArray(chartWindow))
}

// buildChart creates a linked list of series, each holding an array of
// point objects.
func (w *chart) buildChart(rt *core.Runtime, th *core.Thread) core.Ref {
	f := th.PushFrame(3)
	defer th.PopFrame()
	var head core.Ref
	for s := 0; s < chartSeries; s++ {
		f.SetLocal(0, head)
		ser := th.New(w.series)
		f.SetLocal(1, ser)
		data := th.NewRefArray(chartPoints)
		rt.SetRef(ser, w.sData, data)
		rt.SetRef(ser, w.sNext, f.Local(0))
		for i := 0; i < chartPoints; i++ {
			p := th.New(w.point)
			rt.SetInt(p, w.pX, int64(i))
			rt.SetInt(p, w.pY, int64(w.r.Intn(1000)))
			data = rt.GetRef(f.Local(1), w.sData)
			rt.ArrSetRef(data, i, p)
		}
		head = f.Local(1)
	}
	return head
}

// render aggregates every point in the chart.
func (w *chart) render(rt *core.Runtime, chart core.Ref, sum uint64) uint64 {
	for s := chart; s != core.Nil; s = rt.GetRef(s, w.sNext) {
		data := rt.GetRef(s, w.sData)
		for i := 0; i < chartPoints; i++ {
			p := rt.ArrGetRef(data, i)
			sum = checksum(sum, uint64(rt.GetInt(p, w.pX))^uint64(rt.GetInt(p, w.pY)))
		}
	}
	return sum
}

func (w *chart) Iterate(rt *core.Runtime, th *core.Thread) {
	window := w.window.Get()
	var sum uint64
	for c := 0; c < chartPerIter; c++ {
		f := th.PushFrame(1)
		ch := w.buildChart(rt, th)
		f.SetLocal(0, ch)
		sum = w.render(rt, f.Local(0), sum)
		// Retain in the rolling window, evicting the oldest.
		rt.ArrSetRef(window, w.cursor, f.Local(0))
		w.cursor = (w.cursor + 1) % chartWindow
		th.PopFrame()
	}
	_ = sum
}
