package workloads

import (
	"math/rand"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newJess() }) }

// jess models SPEC JVM98 _202_jess (an expert-system shell): a working
// memory of small fact objects churned by assert/retract cycles, with
// pattern matching building transient token chains that link matched
// facts — many small objects with moderate lifetimes and cross links.
type jess struct {
	r   *rand.Rand
	kit *collections.Kit

	fact  *core.Class
	fSlot uint16
	fVal  uint16

	token *core.Class
	tFact uint16
	tNext uint16

	wm *core.Global // working memory: ArrayList of facts
}

const (
	jessWMTarget   = 1500
	jessCyclesPerI = 30
	jessAsserts    = 60
)

func newJess() *jess { return &jess{r: rng("jess")} }

func (w *jess) Name() string   { return "jess" }
func (w *jess) HeapWords() int { return 1 << 16 }

func (w *jess) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.fact = rt.DefineClass("jess.Fact",
		core.DataField("slot"), core.DataField("val"))
	w.fSlot = w.fact.MustFieldIndex("slot")
	w.fVal = w.fact.MustFieldIndex("val")

	w.token = rt.DefineClass("jess.Token",
		core.RefField("fact"), core.RefField("next"))
	w.tFact = w.token.MustFieldIndex("fact")
	w.tNext = w.token.MustFieldIndex("next")

	w.wm = rt.AddGlobal("jess.wm")
	w.wm.Set(w.kit.NewList(th))
}

func (w *jess) Iterate(rt *core.Runtime, th *core.Thread) {
	wm := w.wm.Get()
	var sum uint64
	for cycle := 0; cycle < jessCyclesPerI; cycle++ {
		// Assert new facts.
		for i := 0; i < jessAsserts; i++ {
			f := th.PushFrame(1)
			fact := th.New(w.fact)
			rt.SetInt(fact, w.fSlot, int64(w.r.Intn(16)))
			rt.SetInt(fact, w.fVal, int64(w.r.Intn(1000)))
			f.SetLocal(0, fact)
			w.kit.ListAdd(th, wm, f.Local(0))
			th.PopFrame()
		}
		// Retract: keep working memory near its target size.
		for w.kit.ListLen(wm) > jessWMTarget {
			w.kit.ListRemoveAt(wm, w.r.Intn(w.kit.ListLen(wm)))
		}

		// Pattern match: build a token chain of facts matching a random
		// slot, then fire: fold values.
		slot := int64(w.r.Intn(16))
		f := th.PushFrame(2)
		var chain core.Ref
		w.kit.ListEach(wm, func(_ int, fact core.Ref) {
			if rt.GetInt(fact, w.fSlot) != slot {
				return
			}
			f.SetLocal(0, chain)
			tok := th.New(w.token)
			rt.SetRef(tok, w.tFact, fact)
			rt.SetRef(tok, w.tNext, f.Local(0))
			chain = tok
		})
		f.SetLocal(1, chain)
		for t := f.Local(1); t != core.Nil; t = rt.GetRef(t, w.tNext) {
			fact := rt.GetRef(t, w.tFact)
			sum = checksum(sum, uint64(rt.GetInt(fact, w.fVal)))
		}
		th.PopFrame()
	}
	_ = sum
}
