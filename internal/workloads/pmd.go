package workloads

import (
	"math/rand"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newPmd() }) }

// pmd models the DaCapo source-code analyzer: per iteration it builds an
// AST for a synthetic compilation unit, runs a set of long-lived rules
// over it (deep traversals), and accumulates violation records into a
// report that survives a few iterations before being flushed — mixed
// short-lived trees plus a trickle of medium-lived findings.
type pmd struct {
	r   *rand.Rand
	kit *collections.Kit

	node  *core.Class
	nKids uint16
	nKind uint16

	finding *core.Class
	fNode   uint16
	fRule   uint16

	report *core.Global
}

const (
	pmdRules     = 12
	pmdUnits     = 6
	pmdFlushLen  = 800
	pmdASTDepth  = 6
	pmdASTFanout = 4
)

func newPmd() *pmd { return &pmd{r: rng("pmd")} }

func (w *pmd) Name() string   { return "pmd" }
func (w *pmd) HeapWords() int { return 1 << 17 }

func (w *pmd) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.node = rt.DefineClass("pmd.ASTNode",
		core.RefField("children"), core.DataField("kind"))
	w.nKids = w.node.MustFieldIndex("children")
	w.nKind = w.node.MustFieldIndex("kind")

	w.finding = rt.DefineClass("pmd.Finding",
		core.RefField("node"), core.DataField("rule"))
	w.fNode = w.finding.MustFieldIndex("node")
	w.fRule = w.finding.MustFieldIndex("rule")

	w.report = rt.AddGlobal("pmd.report")
	w.report.Set(w.kit.NewList(th))
}

func (w *pmd) buildAST(rt *core.Runtime, th *core.Thread, depth int) core.Ref {
	f := th.PushFrame(2)
	defer th.PopFrame()
	n := th.New(w.node)
	f.SetLocal(0, n)
	rt.SetInt(n, w.nKind, int64(w.r.Intn(32)))
	if depth > 0 && w.r.Intn(4) > 0 {
		kids := th.NewRefArray(pmdASTFanout)
		rt.SetRef(f.Local(0), w.nKids, kids)
		for i := 0; i < pmdASTFanout; i++ {
			c := w.buildAST(rt, th, depth-1)
			f.SetLocal(1, c)
			rt.ArrSetRef(rt.GetRef(f.Local(0), w.nKids), i, f.Local(1))
		}
	}
	return f.Local(0)
}

// runRule walks the AST; nodes whose kind matches the rule yield findings.
// Findings reference their AST node, keeping a slice of each dead tree
// alive in the report — the medium-lifetime trickle.
func (w *pmd) runRule(rt *core.Runtime, th *core.Thread, ast core.Ref, rule int64) {
	if ast == core.Nil {
		return
	}
	if rt.GetInt(ast, w.nKind)%pmdRules == rule {
		f := th.PushFrame(2)
		f.SetLocal(0, ast)
		fd := th.New(w.finding)
		f.SetLocal(1, fd)
		rt.SetRef(fd, w.fNode, f.Local(0))
		rt.SetInt(fd, w.fRule, rule)
		w.kit.ListAdd(th, w.report.Get(), f.Local(1))
		th.PopFrame()
	}
	kids := rt.GetRef(ast, w.nKids)
	if kids != core.Nil {
		for i, n := 0, rt.ArrLen(kids); i < n; i++ {
			w.runRule(rt, th, rt.ArrGetRef(kids, i), rule)
		}
	}
}

func (w *pmd) Iterate(rt *core.Runtime, th *core.Thread) {
	for u := 0; u < pmdUnits; u++ {
		f := th.PushFrame(1)
		ast := w.buildAST(rt, th, pmdASTDepth)
		f.SetLocal(0, ast)
		for rule := int64(0); rule < pmdRules; rule++ {
			w.runRule(rt, th, f.Local(0), rule)
		}
		th.PopFrame()
	}
	// Flush the report when it grows too large.
	if rep := w.report.Get(); w.kit.ListLen(rep) > pmdFlushLen {
		w.kit.ListClear(rep)
	}
}
