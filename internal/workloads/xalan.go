package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newXalan() }) }

// xalan models the DaCapo XSLT processor: each iteration parses an input
// "document" into a DOM-like tree with text payloads, applies long-lived
// templates to produce an output tree whose nodes reference input text
// nodes (cross-tree sharing), serializes the output, and drops everything.
// Two cross-linked trees per transform with string data.
type xalan struct {
	r *rand.Rand

	elem  *core.Class
	eKids uint16
	eText uint16
	eTag  uint16

	out   *core.Class
	oKids uint16
	oSrc  uint16

	templates *core.Global
}

const (
	xalanDepth  = 5
	xalanFanout = 4
	xalanDocs   = 4
)

func newXalan() *xalan { return &xalan{r: rng("xalan")} }

func (w *xalan) Name() string   { return "xalan" }
func (w *xalan) HeapWords() int { return 1 << 17 }

func (w *xalan) Setup(rt *core.Runtime, th *core.Thread) {
	w.elem = rt.DefineClass("xalan.Element",
		core.RefField("children"), core.RefField("text"), core.DataField("tag"))
	w.eKids = w.elem.MustFieldIndex("children")
	w.eText = w.elem.MustFieldIndex("text")
	w.eTag = w.elem.MustFieldIndex("tag")

	w.out = rt.DefineClass("xalan.OutputNode",
		core.RefField("children"), core.RefField("source"))
	w.oKids = w.out.MustFieldIndex("children")
	w.oSrc = w.out.MustFieldIndex("source")

	// Long-lived "stylesheet": tag -> transformation mode table.
	w.templates = rt.AddGlobal("xalan.templates")
	modes := th.NewDataArray(64)
	w.templates.Set(modes)
	for i := 0; i < 64; i++ {
		rt.ArrSetData(modes, i, uint64(w.r.Intn(3)))
	}
}

func (w *xalan) parse(rt *core.Runtime, th *core.Thread, depth int) core.Ref {
	f := th.PushFrame(2)
	defer th.PopFrame()
	e := th.New(w.elem)
	f.SetLocal(0, e)
	rt.SetInt(e, w.eTag, int64(w.r.Intn(64)))
	text := th.NewString(sentence(w.r, 3))
	rt.SetRef(f.Local(0), w.eText, text)
	if depth > 0 {
		kids := th.NewRefArray(xalanFanout)
		rt.SetRef(f.Local(0), w.eKids, kids)
		for i := 0; i < xalanFanout; i++ {
			c := w.parse(rt, th, depth-1)
			f.SetLocal(1, c)
			rt.ArrSetRef(rt.GetRef(f.Local(0), w.eKids), i, f.Local(1))
		}
	}
	return f.Local(0)
}

// transform applies the stylesheet: output nodes reference input text
// (mode 0 copies subtree, mode 1 references, mode 2 drops).
func (w *xalan) transform(rt *core.Runtime, th *core.Thread, in core.Ref) core.Ref {
	modes := w.templates.Get()
	mode := rt.ArrGetData(modes, int(rt.GetInt(in, w.eTag)))
	if mode == 2 {
		return core.Nil
	}
	f := th.PushFrame(3)
	defer th.PopFrame()
	f.SetLocal(0, in)
	o := th.New(w.out)
	f.SetLocal(1, o)
	rt.SetRef(o, w.oSrc, rt.GetRef(f.Local(0), w.eText))

	kids := rt.GetRef(f.Local(0), w.eKids)
	if kids != core.Nil && mode == 0 {
		n := rt.ArrLen(kids)
		okids := th.NewRefArray(n)
		rt.SetRef(f.Local(1), w.oKids, okids)
		for i := 0; i < n; i++ {
			c := w.transform(rt, th, rt.ArrGetRef(rt.GetRef(f.Local(0), w.eKids), i))
			f.SetLocal(2, c)
			rt.ArrSetRef(rt.GetRef(f.Local(1), w.oKids), i, f.Local(2))
		}
	}
	return f.Local(1)
}

func (w *xalan) serialize(rt *core.Runtime, o core.Ref, sum uint64) uint64 {
	if o == core.Nil {
		return sum
	}
	if src := rt.GetRef(o, w.oSrc); src != core.Nil {
		sum = checksum(sum, uint64(rt.StringLen(src)))
	}
	kids := rt.GetRef(o, w.oKids)
	if kids != core.Nil {
		for i, n := 0, rt.ArrLen(kids); i < n; i++ {
			sum = w.serialize(rt, rt.ArrGetRef(kids, i), sum)
		}
	}
	return sum
}

func (w *xalan) Iterate(rt *core.Runtime, th *core.Thread) {
	var sum uint64
	for d := 0; d < xalanDocs; d++ {
		f := th.PushFrame(2)
		in := w.parse(rt, th, xalanDepth)
		f.SetLocal(0, in)
		out := w.transform(rt, th, f.Local(0))
		f.SetLocal(1, out)
		sum = w.serialize(rt, f.Local(1), sum)
		th.PopFrame()
	}
	_ = sum
}
