package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newBloat() }) }

// bloat models the DaCapo bytecode optimizer: a long-lived pool of
// control-flow graphs with dense cross and back edges that are repeatedly
// rewritten in place — blocks replaced by freshly allocated ones, edges
// re-linked. It is the most pointer-rich workload in the suite; the paper
// measures its worst-case GC-time overhead (+30%) on exactly this kind of
// heap, where the trace loop's per-reference work dominates.
type bloat struct {
	r *rand.Rand

	block *core.Class
	edges uint16 // block.edges -> ref array
	bID   uint16

	method *core.Class
	blocks uint16 // method.blocks -> ref array

	pool *core.Global
}

const (
	bloatMethods  = 60
	bloatBlocks   = 64 // blocks per method
	bloatFanout   = 6  // out-edges per block
	bloatRewrites = 60 // rewrites per iteration
)

func newBloat() *bloat { return &bloat{r: rng("bloat")} }

func (w *bloat) Name() string   { return "bloat" }
func (w *bloat) HeapWords() int { return 144 << 10 }

func (w *bloat) Setup(rt *core.Runtime, th *core.Thread) {
	w.block = rt.DefineClass("bloat.Block",
		core.RefField("edges"), core.DataField("id"))
	w.edges = w.block.MustFieldIndex("edges")
	w.bID = w.block.MustFieldIndex("id")

	w.method = rt.DefineClass("bloat.Method", core.RefField("blocks"))
	w.blocks = w.method.MustFieldIndex("blocks")

	w.pool = rt.AddGlobal("bloat.pool")
	pool := th.NewRefArray(bloatMethods)
	w.pool.Set(pool)
	for m := 0; m < bloatMethods; m++ {
		f := th.PushFrame(2)
		meth := th.New(w.method)
		f.SetLocal(0, meth)
		blocks := th.NewRefArray(bloatBlocks)
		rt.SetRef(meth, w.blocks, blocks)
		for b := 0; b < bloatBlocks; b++ {
			rt.ArrSetRef(blocks, b, w.newBlock(rt, th, int64(b)))
		}
		// Wire dense random edges (cross and back edges included).
		w.rewire(rt, f.Local(0))
		rt.ArrSetRef(pool, m, f.Local(0))
		th.PopFrame()
	}
}

// newBlock allocates a block with an empty edge array.
func (w *bloat) newBlock(rt *core.Runtime, th *core.Thread, id int64) core.Ref {
	f := th.PushFrame(1)
	defer th.PopFrame()
	b := th.New(w.block)
	f.SetLocal(0, b)
	e := th.NewRefArray(bloatFanout)
	rt.SetRef(b, w.edges, e)
	rt.SetInt(b, w.bID, id)
	return f.Local(0)
}

// rewire points every block's edges at random peer blocks.
func (w *bloat) rewire(rt *core.Runtime, meth core.Ref) {
	blocks := rt.GetRef(meth, w.blocks)
	for b := 0; b < bloatBlocks; b++ {
		blk := rt.ArrGetRef(blocks, b)
		e := rt.GetRef(blk, w.edges)
		for i := 0; i < bloatFanout; i++ {
			rt.ArrSetRef(e, i, rt.ArrGetRef(blocks, w.r.Intn(bloatBlocks)))
		}
	}
}

func (w *bloat) Iterate(rt *core.Runtime, th *core.Thread) {
	pool := w.pool.Get()
	var sum uint64
	for n := 0; n < bloatRewrites; n++ {
		meth := rt.ArrGetRef(pool, w.r.Intn(bloatMethods))
		blocks := rt.GetRef(meth, w.blocks)

		// Replace a batch of blocks with fresh ones, inheriting edges.
		for k := 0; k < 24; k++ {
			i := w.r.Intn(bloatBlocks)
			old := rt.ArrGetRef(blocks, i)
			nb := w.newBlock(rt, th, rt.GetInt(old, w.bID)+1)
			// Copy edges from the old block.
			oe := rt.GetRef(old, w.edges)
			ne := rt.GetRef(nb, w.edges)
			for j := 0; j < bloatFanout; j++ {
				rt.ArrSetRef(ne, j, rt.ArrGetRef(oe, j))
			}
			rt.ArrSetRef(blocks, i, nb)
		}
		w.rewire(rt, meth)

		// Depth-first traversal over the pointer-dense graph.
		sum = w.traverse(rt, blocks, sum)
	}
	_ = sum
}

// traverse walks the whole method graph from block 0 following edges,
// using a visited set keyed by block id modulo table size.
func (w *bloat) traverse(rt *core.Runtime, blocks core.Ref, sum uint64) uint64 {
	visited := make(map[core.Ref]bool, bloatBlocks)
	stack := []core.Ref{rt.ArrGetRef(blocks, 0)}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == core.Nil || visited[b] {
			continue
		}
		visited[b] = true
		sum = checksum(sum, uint64(rt.GetInt(b, w.bID)))
		e := rt.GetRef(b, w.edges)
		for i := 0; i < bloatFanout; i++ {
			stack = append(stack, rt.ArrGetRef(e, i))
		}
	}
	return sum
}
