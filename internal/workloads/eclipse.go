package workloads

import (
	"math/rand"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newEclipse() }) }

// eclipse models the DaCapo IDE benchmark: a large, long-lived workspace —
// a map from file ids to symbol lists — continuously edited: files are
// reindexed (their symbol lists rebuilt), searched, and occasionally
// created or deleted. The profile is a big stable heap with steady
// medium-sized turnover, the largest live set in the suite.
type eclipse struct {
	r   *rand.Rand
	kit *collections.Kit

	symbol *core.Class
	sName  uint16
	sKind  uint16

	workspace *core.Global
	nextFile  int64
}

const (
	eclipseFiles       = 400
	eclipseSymsPerFile = 24
	eclipseEditsPerIt  = 100
)

func newEclipse() *eclipse { return &eclipse{r: rng("eclipse")} }

func (w *eclipse) Name() string   { return "eclipse" }
func (w *eclipse) HeapWords() int { return 224 << 10 }

func (w *eclipse) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.symbol = rt.DefineClass("eclipse.Symbol",
		core.RefField("name"), core.DataField("kind"))
	w.sName = w.symbol.MustFieldIndex("name")
	w.sKind = w.symbol.MustFieldIndex("kind")

	w.workspace = rt.AddGlobal("eclipse.workspace")
	ws := w.kit.NewMap(th)
	w.workspace.Set(ws)
	for i := 0; i < eclipseFiles; i++ {
		w.indexFile(rt, th, w.nextFile)
		w.nextFile++
	}
}

// indexFile builds a fresh symbol list for the file and installs it in the
// workspace map.
func (w *eclipse) indexFile(rt *core.Runtime, th *core.Thread, file int64) {
	f := th.PushFrame(2)
	defer th.PopFrame()
	list := w.kit.NewList(th)
	f.SetLocal(0, list)
	for s := 0; s < eclipseSymsPerFile; s++ {
		name := th.NewString(sentence(w.r, 2))
		f.SetLocal(1, name)
		sym := th.New(w.symbol)
		rt.SetRef(sym, w.sName, f.Local(1))
		rt.SetInt(sym, w.sKind, int64(w.r.Intn(8)))
		w.kit.ListAdd(th, f.Local(0), sym)
	}
	w.kit.MapPut(th, w.workspace.Get(), file, f.Local(0))
}

func (w *eclipse) Iterate(rt *core.Runtime, th *core.Thread) {
	ws := w.workspace.Get()
	var sum uint64
	for e := 0; e < eclipseEditsPerIt; e++ {
		switch w.r.Intn(10) {
		case 0: // create a file, retiring the oldest beyond the cap
			w.indexFile(rt, th, w.nextFile)
			w.nextFile++
			w.kit.MapRemove(ws, w.nextFile-int64(eclipseFiles)-1)
		case 1: // delete a file
			if file := w.nextFile - int64(w.r.Intn(eclipseFiles)) - 1; file >= 0 {
				w.kit.MapRemove(ws, file)
			}
		default: // edit: reindex an existing file
			file := w.nextFile - int64(w.r.Intn(eclipseFiles)) - 1
			if file >= 0 {
				w.indexFile(rt, th, file)
			}
		}
		// Search pass: scan a few files' symbols.
		for q := 0; q < 5; q++ {
			file := w.nextFile - int64(w.r.Intn(eclipseFiles)) - 1
			if file < 0 {
				continue
			}
			if list, ok := w.kit.MapGet(ws, file); ok {
				w.kit.ListEach(list, func(_ int, sym core.Ref) {
					sum = checksum(sum, uint64(rt.GetInt(sym, w.sKind)))
				})
			}
		}
	}
	_ = sum
}
