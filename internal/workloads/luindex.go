package workloads

import (
	"math/rand"

	"repro/internal/collections"
	"repro/internal/core"
)

func init() { register(func() Workload { return newLuindex() }) }

// luindex models the DaCapo index-building benchmark: a long-lived,
// steadily growing inverted index (term -> posting list), fed by batches
// of synthetic documents. Growth-dominated profile: most allocation is
// promoted into the live set rather than dying young, with periodic index
// compaction releasing older segments.
type luindex struct {
	r   *rand.Rand
	kit *collections.Kit

	posting *core.Class
	pDoc    uint16
	pFreq   uint16

	index  *core.Global
	nextID int64
}

const (
	luindexDocsPerIt = 60
	luindexDocWords  = 40
	luindexSegment   = 150 // docs per segment before compaction
)

func newLuindex() *luindex { return &luindex{r: rng("luindex")} }

func (w *luindex) Name() string   { return "luindex" }
func (w *luindex) HeapWords() int { return 1 << 17 }

func (w *luindex) Setup(rt *core.Runtime, th *core.Thread) {
	w.kit = collections.NewKit(rt)
	w.posting = rt.DefineClass("luindex.Posting",
		core.DataField("doc"), core.DataField("freq"))
	w.pDoc = w.posting.MustFieldIndex("doc")
	w.pFreq = w.posting.MustFieldIndex("freq")

	// term id -> ArrayList of postings.
	w.index = rt.AddGlobal("luindex.index")
	w.index.Set(w.kit.NewMap(th))
}

func (w *luindex) Iterate(rt *core.Runtime, th *core.Thread) {
	idx := w.index.Get()
	for d := 0; d < luindexDocsPerIt; d++ {
		doc := w.nextID
		w.nextID++

		// Tokenize a synthetic document into term frequencies.
		freqs := map[int64]int64{}
		for i := 0; i < luindexDocWords; i++ {
			freqs[int64(w.r.Intn(len(words)*8))]++
		}

		// Merge into the inverted index.
		for term, freq := range freqs {
			list, ok := w.kit.MapGet(idx, term)
			if !ok {
				list = w.kit.NewList(th)
				w.kit.MapPut(th, idx, term, list)
				list, _ = w.kit.MapGet(idx, term)
			}
			f := th.PushFrame(1)
			p := th.New(w.posting)
			rt.SetInt(p, w.pDoc, doc)
			rt.SetInt(p, w.pFreq, freq)
			f.SetLocal(0, p)
			// Re-fetch the list: the posting allocation may have GC'd.
			list, _ = w.kit.MapGet(idx, term)
			w.kit.ListAdd(th, list, f.Local(0))
			th.PopFrame()
		}

		// Segment compaction: drop postings older than the segment
		// horizon so the index does not grow without bound.
		if doc%luindexSegment == luindexSegment-1 {
			horizon := doc - luindexSegment
			w.kit.MapEach(idx, func(_ int64, list core.Ref) {
				for i := w.kit.ListLen(list) - 1; i >= 0; i-- {
					p := w.kit.ListGet(list, i)
					if rt.GetInt(p, w.pDoc) < horizon {
						w.kit.ListRemoveAt(list, i)
					}
				}
			})
		}
	}
}
