package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newCompress() }) }

// compress models SPEC JVM98 _201_compress: LZW-style compression over
// large byte buffers. The heap is almost entirely data arrays with a
// long-lived dictionary and essentially no pointer structure — the profile
// where the assertion infrastructure's per-reference checks have the least
// to bite on (the paper's low end of Figure 3).
type compress struct {
	r *rand.Rand

	dict *core.Global // hash dictionary, data array
}

const (
	compressBufWords = 8192
	compressDictSize = 1 << 13
	compressBlocks   = 6
)

func newCompress() *compress { return &compress{r: rng("compress")} }

func (w *compress) Name() string   { return "compress" }
func (w *compress) HeapWords() int { return 1 << 16 }

func (w *compress) Setup(rt *core.Runtime, th *core.Thread) {
	w.dict = rt.AddGlobal("compress.dict")
	w.dict.Set(th.NewDataArray(compressDictSize))
}

func (w *compress) Iterate(rt *core.Runtime, th *core.Thread) {
	dict := w.dict.Get()
	var sum uint64
	for b := 0; b < compressBlocks; b++ {
		f := th.PushFrame(2)
		// Input block: pseudo-random but compressible data.
		in := th.NewDataArray(compressBufWords)
		f.SetLocal(0, in)
		for i := 0; i < compressBufWords; i++ {
			rt.ArrSetData(in, i, uint64(w.r.Intn(64)))
		}
		out := th.NewDataArray(compressBufWords)
		f.SetLocal(1, out)
		in = f.Local(0)

		// LZW-ish pass: roll a code over the dictionary.
		code := uint64(1)
		oi := 0
		for i := 0; i < compressBufWords; i++ {
			sym := rt.ArrGetData(in, i)
			code = (code*33 + sym) % compressDictSize
			prev := rt.ArrGetData(dict, int(code))
			if prev == code {
				continue // "in dictionary": emit nothing
			}
			rt.ArrSetData(dict, int(code), code)
			rt.ArrSetData(out, oi, code)
			oi++
		}
		for i := 0; i < oi; i++ {
			sum = checksum(sum, rt.ArrGetData(out, i))
		}
		th.PopFrame()
	}
	_ = sum
}
