package workloads

import (
	"math/rand"

	"repro/internal/core"
)

func init() { register(func() Workload { return newFop() }) }

// fop models the DaCapo print formatter: each iteration builds one
// formatting-object tree carrying text strings, runs a layout pass that
// produces a second (area) tree referencing the first, serializes it, and
// drops both. Two whole trees per document with string payloads — a
// bulk-allocation, bulk-death profile.
type fop struct {
	r *rand.Rand

	fo     *core.Class
	foKids uint16
	foText uint16

	area     *core.Class
	areaKids uint16
	areaSrc  uint16
	areaW    uint16
}

const (
	fopFanout = 5
	fopDepth  = 5
	fopDocs   = 3
)

func newFop() *fop { return &fop{r: rng("fop")} }

func (w *fop) Name() string   { return "fop" }
func (w *fop) HeapWords() int { return 1 << 17 }

func (w *fop) Setup(rt *core.Runtime, th *core.Thread) {
	w.fo = rt.DefineClass("fop.FONode",
		core.RefField("children"), core.RefField("text"))
	w.foKids = w.fo.MustFieldIndex("children")
	w.foText = w.fo.MustFieldIndex("text")

	w.area = rt.DefineClass("fop.Area",
		core.RefField("children"), core.RefField("source"), core.DataField("width"))
	w.areaKids = w.area.MustFieldIndex("children")
	w.areaSrc = w.area.MustFieldIndex("source")
	w.areaW = w.area.MustFieldIndex("width")
}

// buildFO builds the formatting-object tree.
func (w *fop) buildFO(rt *core.Runtime, th *core.Thread, depth int) core.Ref {
	f := th.PushFrame(3)
	defer th.PopFrame()
	n := th.New(w.fo)
	f.SetLocal(0, n)
	text := th.NewString(sentence(w.r, 4))
	rt.SetRef(f.Local(0), w.foText, text)
	if depth > 0 {
		kids := th.NewRefArray(fopFanout)
		rt.SetRef(f.Local(0), w.foKids, kids)
		for i := 0; i < fopFanout; i++ {
			child := w.buildFO(rt, th, depth-1)
			f.SetLocal(1, child)
			kids = rt.GetRef(f.Local(0), w.foKids)
			rt.ArrSetRef(kids, i, f.Local(1))
		}
	}
	return f.Local(0)
}

// layout produces the area tree mirroring the FO tree.
func (w *fop) layout(rt *core.Runtime, th *core.Thread, fo core.Ref) core.Ref {
	f := th.PushFrame(3)
	defer th.PopFrame()
	f.SetLocal(0, fo)
	a := th.New(w.area)
	f.SetLocal(1, a)
	rt.SetRef(a, w.areaSrc, f.Local(0))
	text := rt.GetRef(f.Local(0), w.foText)
	rt.SetInt(a, w.areaW, int64(rt.StringLen(text))*6)

	kids := rt.GetRef(f.Local(0), w.foKids)
	if kids != core.Nil {
		n := rt.ArrLen(kids)
		akids := th.NewRefArray(n)
		rt.SetRef(f.Local(1), w.areaKids, akids)
		for i := 0; i < n; i++ {
			child := w.layout(rt, th, rt.ArrGetRef(rt.GetRef(f.Local(0), w.foKids), i))
			f.SetLocal(2, child)
			rt.ArrSetRef(rt.GetRef(f.Local(1), w.areaKids), i, f.Local(2))
		}
	}
	return f.Local(1)
}

// serialize folds the area tree into a checksum.
func (w *fop) serialize(rt *core.Runtime, a core.Ref, sum uint64) uint64 {
	sum = checksum(sum, uint64(rt.GetInt(a, w.areaW)))
	kids := rt.GetRef(a, w.areaKids)
	if kids != core.Nil {
		for i, n := 0, rt.ArrLen(kids); i < n; i++ {
			sum = w.serialize(rt, rt.ArrGetRef(kids, i), sum)
		}
	}
	return sum
}

func (w *fop) Iterate(rt *core.Runtime, th *core.Thread) {
	var sum uint64
	for d := 0; d < fopDocs; d++ {
		f := th.PushFrame(2)
		fo := w.buildFO(rt, th, fopDepth)
		f.SetLocal(0, fo)
		area := w.layout(rt, th, f.Local(0))
		f.SetLocal(1, area)
		sum = w.serialize(rt, f.Local(1), sum)
		th.PopFrame()
	}
	_ = sum
}
