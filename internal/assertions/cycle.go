package assertions

import (
	"repro/internal/classes"
	"repro/internal/report"
	"repro/internal/sidetab"
	"repro/internal/trace"
	"repro/internal/vmheap"
)

// This file contains the collector-facing side of the engine: the hooks
// wired into the trace loops and the begin/end-of-cycle table maintenance.
//
// Cycle state is split out of the engine so collections can overlap: each
// concurrent zone collection owns a private Cycle (report deduplication,
// the cached Force decisions, and the Halt verdict are all per-collection),
// while the engine's long-lived tables (region objects, ownership, stats,
// the handler chain) are shared and guarded by e.mu. A Cycle is touched
// only by the goroutine driving its collection, so its maps need no lock;
// dispatch and every read of a shared table take e.mu internally. e.mu is
// ordered after the runtime lock and the zone locks and before nothing —
// no lock is ever acquired under it (the handler chain runs under it, so
// handlers must not re-enter the runtime; that was already the contract
// when they ran under the runtime lock).

// Cycle is the per-collection assertion state: one is live for each
// collection in flight. The whole-heap collectors use the engine's default
// cycle (BeginCycle/Checks/Halted); concurrent zone collections create
// their own with NewCycle/ChecksFor.
type Cycle struct {
	e   *Engine
	seq uint64

	// Per-cycle report deduplication: dense epoch-stamped tables drawn
	// from the engine pool (tabs), or — in the map-backed reference mode,
	// and on the pre-collection placeholder cycle — lazily-built maps.
	// tabs.dead / reportedDead cache the handler's action so the Force
	// decision is applied consistently to every incoming reference of the
	// same object; the improper table is shared between the ownership
	// phase's improper-use reports and the root phase's unowned-ownee
	// reports, so one object yields at most one ownership warning per
	// cycle regardless of which phase sees it first.
	tabs             *cycleTabs
	reportedDead     map[vmheap.Ref]report.Action
	reportedShared   map[vmheap.Ref]bool
	reportedImproper map[vmheap.Ref]bool

	halt *report.Violation
}

// cycleTabs is one collection's set of dense dedupe tables. Released sets
// return to the engine pool cleared (an O(1) epoch bump each), so
// steady-state collections allocate nothing: the pool high-water mark is
// the maximum number of collections ever simultaneously in flight.
type cycleTabs struct {
	dead     *sidetab.Table[report.Action]
	shared   *sidetab.Bits
	improper *sidetab.Bits
}

// acquireTabs pops a cleared table set from the pool, or creates one.
func (e *Engine) acquireTabs() *cycleTabs {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.tabPool); n > 0 {
		t := e.tabPool[n-1]
		e.tabPool = e.tabPool[:n-1]
		return t
	}
	t := &cycleTabs{
		dead:     sidetab.NewTable[report.Action](),
		shared:   sidetab.NewBits(),
		improper: sidetab.NewBits(),
	}
	e.allTabs = append(e.allTabs, t)
	return t
}

// ReleaseCycle returns a cycle's dense tables to the engine pool, cleared.
// Call after the last read of the cycle's state (Halted is unaffected —
// the halt verdict lives on the Cycle itself). The whole-heap paths
// release via BeginCycle; the concurrent zone path releases at the end of
// ZoneCollection.Finish. Releasing a map-mode or placeholder cycle is a
// no-op; a second release of the same cycle likewise.
func (e *Engine) ReleaseCycle(c *Cycle) {
	if c == nil || c.tabs == nil {
		return
	}
	t := c.tabs
	c.tabs = nil
	t.dead.Clear()
	t.shared.Clear()
	t.improper.Clear()
	e.mu.Lock()
	e.tabPool = append(e.tabPool, t)
	e.mu.Unlock()
}

// NewCycle creates a fresh cycle for one collection. Safe to call
// concurrently with other collections.
func (e *Engine) NewCycle() *Cycle {
	c := &Cycle{e: e, seq: e.cycle.Add(1)}
	if !e.mapTables {
		c.tabs = e.acquireTabs()
	}
	return c
}

// BeginCycle prepares the engine's default cycle for a collection (the
// whole-heap path): per-cycle report deduplication is reset and the cycle
// counter advances. The outgoing cycle's tables return to the pool — its
// reports are never consulted again (a pending Halt was surfaced by the
// collection that produced it).
func (e *Engine) BeginCycle() {
	old := e.defaultCycle
	e.defaultCycle = e.NewCycle()
	e.ReleaseCycle(old)
}

// Halted returns the violation for which the handler requested Halt during
// the engine's default cycle, or nil.
func (e *Engine) Halted() *report.Violation { return e.defaultCycle.Halted() }

// Halted returns the violation for which the handler requested Halt during
// this cycle, or nil.
func (c *Cycle) Halted() *report.Violation {
	if c == nil {
		return nil
	}
	return c.halt
}

// Checks returns the assertion callouts for the Infrastructure trace loop,
// bound to the engine's default cycle.
func (e *Engine) Checks() trace.Checks { return e.ChecksFor(e.defaultCycle) }

// ChecksFor returns the assertion callouts bound to one collection's cycle.
func (e *Engine) ChecksFor(c *Cycle) trace.Checks {
	return trace.Checks{
		Dead:    c.onDead,
		Shared:  c.onShared,
		Unowned: c.onUnowned,
	}
}

// OwnershipPhase returns the phase descriptor for the collector, or nil when
// no ownership assertions are registered.
func (e *Engine) OwnershipPhase() *trace.OwnershipPhase {
	if !e.HasOwnership() {
		return nil
	}
	return &trace.OwnershipPhase{
		Owners:   e.owners,
		OwnerOf:  e.ownerOf,
		IsOwner:  func(r vmheap.Ref) bool { return e.heap.Flags(r, vmheap.FlagOwner) != 0 },
		Improper: e.defaultCycle.onImproper,
	}
}

// pathElems resolves a raw reference path into class-named elements.
func (e *Engine) pathElems(path []vmheap.Ref) []report.PathElem {
	out := make([]report.PathElem, len(path))
	for i, r := range path {
		out[i] = report.PathElem{Class: e.reg.Name(e.heap.ClassID(r)), Ref: r}
	}
	return out
}

// dispatch routes a violation to the handler and folds the returned action:
// Halt is recorded on the cycle for the collector to surface after the
// collection completes (the heap must reach a consistent state first), and
// the effective action for the tracer is returned. The stats bump and the
// handler call run under e.mu; the halt stash is cycle-private.
func (c *Cycle) dispatch(v *report.Violation) report.Action {
	e := c.e
	e.mu.Lock()
	e.stats.Violations++
	act := report.Continue
	if e.handler != nil {
		act = e.handler.HandleViolation(v)
	}
	e.mu.Unlock()
	if act == report.Halt {
		if c.halt == nil {
			c.halt = v
		}
		return report.Continue
	}
	return act
}

// deadSeen, recordDead, sharedSeenRecord, improperSeen and recordImproper
// are the dedupe-table accessors the trace hooks run per encounter: one
// dense epoch-stamped probe in sidetab mode, the original map operations
// in the reference mode (and on the pre-collection placeholder cycle,
// whose tables are nil in both modes).

func (c *Cycle) deadSeen(obj vmheap.Ref) (report.Action, bool) {
	if c.tabs != nil {
		return c.tabs.dead.Get(uint32(obj))
	}
	act, ok := c.reportedDead[obj]
	return act, ok
}

func (c *Cycle) recordDead(obj vmheap.Ref, act report.Action) {
	if c.tabs != nil {
		c.tabs.dead.Set(uint32(obj), act)
		return
	}
	if c.reportedDead == nil {
		c.reportedDead = make(map[vmheap.Ref]report.Action)
	}
	c.reportedDead[obj] = act
}

// sharedSeenRecord marks obj as shared-reported, returning whether it
// already was.
func (c *Cycle) sharedSeenRecord(obj vmheap.Ref) bool {
	if c.tabs != nil {
		return !c.tabs.shared.Set(uint32(obj))
	}
	if c.reportedShared[obj] {
		return true
	}
	if c.reportedShared == nil {
		c.reportedShared = make(map[vmheap.Ref]bool)
	}
	c.reportedShared[obj] = true
	return false
}

func (c *Cycle) improperSeen(obj vmheap.Ref) bool {
	if c.tabs != nil {
		return c.tabs.improper.Get(uint32(obj))
	}
	return c.reportedImproper[obj]
}

func (c *Cycle) recordImproper(obj vmheap.Ref) {
	if c.tabs != nil {
		c.tabs.improper.Set(uint32(obj))
		return
	}
	if c.reportedImproper == nil {
		c.reportedImproper = make(map[vmheap.Ref]bool)
	}
	c.reportedImproper[obj] = true
}

// onDead handles an encounter of a dead-asserted object during tracing. The
// handler runs once per object per cycle; its action is cached so Force is
// applied uniformly to every incoming reference.
func (c *Cycle) onDead(obj vmheap.Ref, path func() []vmheap.Ref) report.Action {
	if act, seen := c.deadSeen(obj); seen {
		return act
	}
	e := c.e
	kind := report.DeadReachable
	if e.regionHas(obj) {
		kind = report.RegionSurvivor
	}
	v := &report.Violation{
		Kind:   kind,
		Cycle:  c.seq,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems(path()),
	}
	act := c.dispatch(v)
	c.recordDead(obj, act)
	return act
}

// onShared handles the second encounter of an unshared-asserted object.
func (c *Cycle) onShared(obj vmheap.Ref, path func() []vmheap.Ref) {
	if c.sharedSeenRecord(obj) {
		return
	}
	e := c.e
	c.dispatch(&report.Violation{
		Kind:   report.SharedObject,
		Cycle:  c.seq,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems(path()),
	})
}

// onUnowned handles a root-phase visit of an ownee without the owned bit.
// It shares the improper table with onImproper — whichever phase reports
// an object first suppresses the other's warning — and records its own
// report, so an ownee reaching this hook through more than one phase (the
// root scan and the ownee-subtree drain both call it) warns exactly once
// per cycle.
func (c *Cycle) onUnowned(obj vmheap.Ref, path func() []vmheap.Ref) {
	if c.improperSeen(obj) {
		// Already reported as improper use during the ownership phase;
		// a second warning for the same object would be noise.
		return
	}
	c.recordImproper(obj)
	e := c.e
	ownerName := "unknown owner"
	if idx, ok := e.ownerOf(obj); ok {
		if o := e.owners[idx]; o != vmheap.Nil {
			ownerName = e.reg.Name(e.heap.ClassID(o))
		}
	}
	c.dispatch(&report.Violation{
		Kind:   report.UnownedOwnee,
		Cycle:  c.seq,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems(path()),
		Owner:  ownerName,
	})
}

// onImproper handles an ownee reached from a different owner's scan.
func (c *Cycle) onImproper(obj vmheap.Ref, scanningOwner int, path func() []vmheap.Ref) {
	if c.improperSeen(obj) {
		return
	}
	c.recordImproper(obj)
	e := c.e
	owner := "unknown owner"
	if o := e.owners[scanningOwner]; o != vmheap.Nil {
		owner = e.reg.Name(e.heap.ClassID(o))
	}
	c.dispatch(&report.Violation{
		Kind:   report.ImproperOwnership,
		Cycle:  c.seq,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems(path()),
		Owner:  owner,
	})
}

// CheckInstanceLimits runs at the end of the mark phase: tracked classes
// whose live counts exceed their limits are reported. No path is available
// (the paper's Section 2.7 limitation for assert-instances).
func (e *Engine) CheckInstanceLimits() {
	for _, over := range e.reg.CheckLimits() {
		e.defaultCycle.dispatch(&report.Violation{
			Kind:  report.TooManyInstances,
			Cycle: e.defaultCycle.seq,
			Class: over.Class.Name,
			Count: over.Count,
			Limit: over.Limit,
		})
	}
}

// CheckInstanceTotals judges instance limits against caller-summed counts
// (in Registry trackedIDs order, as drained by Registry.TakeCounts or
// folded by Registry.FoldLocalCounts). The zoned runtime uses this after a
// full zone rotation: each zone collection counts only its own zone's live
// instances, so only the sum across every zone is comparable to a
// whole-heap count. The check runs on its own cycle (the rotation that
// produced the counts may have spanned several per-zone cycles), so a
// handler-requested Halt is returned rather than stashed on the default
// cycle.
func (e *Engine) CheckInstanceTotals(counts []int64) *report.Violation {
	c := e.NewCycle()
	defer e.ReleaseCycle(c) // instance reports never touch the dedupe tables
	for _, over := range e.reg.CheckTotals(counts) {
		c.dispatch(&report.Violation{
			Kind:  report.TooManyInstances,
			Cycle: c.seq,
			Class: over.Class.Name,
			Count: over.Count,
			Limit: over.Limit,
		})
	}
	return c.halt
}

// ReportRetireSurvivor reports one object that survived a Zone.Retire: the
// zone was declared dead wholesale, but an out-of-zone reference or root
// still reaches this object. Retire is the bulk form of assert-alldead over
// a zone's allocations, so survivors carry the RegionSurvivor kind; no
// trace ran, so the path holds only the object itself. The caller brackets
// the whole retire in one BeginCycle and reports each survivor once.
func (e *Engine) ReportRetireSurvivor(obj vmheap.Ref) {
	e.defaultCycle.dispatch(&report.Violation{
		Kind:   report.RegionSurvivor,
		Cycle:  e.defaultCycle.seq,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems([]vmheap.Ref{obj}),
	})
}

// PreSweep runs after the mark phase and before the sweep, while unmarked
// objects are still parseable. It purges every engine table of entries
// about to be reclaimed, so no table ever holds a reference into freed (and
// reusable) memory:
//
//   - region queues drop dying entries (those objects were born and died
//     inside the region — the assertion holds for them);
//   - dying ownees leave the ownee table (the paper: "we must remove each
//     unreachable ownee after a GC");
//   - dying owners vacate their slot, and their surviving ownees' pairs are
//     dropped (ownership of a collected owner is no longer checkable).
//
// regionObjs is not purged here but by FreeHook during the sweep itself:
// keying the purge on actual reclamation (rather than on a liveness
// predicate that must agree with the sweep's) is what guarantees a recycled
// Ref can never inherit a previous object's region standing.
//
// The live predicate tells the engine which objects survive the imminent
// sweep: for a full collection that is the mark bit; for a generational
// minor collection, mark bit or maturity; for a zone collection, "outside
// the zone, or marked". The whole pass runs under e.mu so concurrent zone
// collections' purges, and mutator-side region recording, serialize
// against it.
func (e *Engine) PreSweep(live func(vmheap.Ref) bool) {
	marked := live

	e.mu.Lock()
	defer e.mu.Unlock()

	for _, t := range e.threads.All() {
		t.PurgeRegionQueues(marked)
	}

	if len(e.ownees) == 0 && len(e.owners) == 0 {
		return
	}

	// Vacate dying owners first so their ownees can be dropped in the
	// same pass.
	deadOwner := make([]bool, len(e.owners))
	var dying []vmheap.Ref
	for i, o := range e.owners {
		if o == vmheap.Nil {
			continue
		}
		if !marked(o) {
			deadOwner[i] = true
			dying = append(dying, o)
			e.delOwnerIdx(o)
			// The object is about to be freed; its header dies with it,
			// so there is no bit to clear.
			e.owners[i] = vmheap.Nil
		}
	}
	// An owner is deliberately never marked by its own region's scans (back
	// edges must not keep a collectable owner alive), so an owner can die
	// while its region survives on the pre-phase marks. Null the survivors'
	// references into the dying owners — left in place they would dangle
	// into freed, recyclable memory.
	if len(dying) > 0 {
		e.nullRefsTo(dying, marked)
	}

	kept := e.ownees[:0]
	for _, entry := range e.ownees {
		switch {
		case !marked(entry.obj):
			// Dying ownee: drop the pair; the header dies with it.
		case deadOwner[entry.owner]:
			// Surviving ownee of a dead owner: drop the pair and clear
			// the stale ownee bit so the next trace does not misreport.
			e.heap.ClearFlags(entry.obj, vmheap.FlagOwnee|vmheap.FlagOwned)
		default:
			kept = append(kept, entry)
		}
	}
	e.ownees = kept
}

// nullRefsTo nulls every reference slot of a surviving object that points
// at one of the dying owner objects. Only objects marked by the ownership
// phase's truncation rules can hold such references (any root-phase scan
// reaching an owner would have marked it), so this runs only on cycles that
// actually collect an owner.
func (e *Engine) nullRefsTo(dying []vmheap.Ref, live func(vmheap.Ref) bool) {
	dead := make(map[vmheap.Ref]bool, len(dying))
	for _, r := range dying {
		dead[r] = true
	}
	h := e.heap
	h.Iterate(func(r vmheap.Ref, _ uint64) {
		if !live(r) {
			return
		}
		switch h.KindOf(r) {
		case vmheap.KindScalar:
			for _, off := range e.reg.RefOffsets(h.ClassID(r)) {
				if dead[h.RefAt(r, uint32(off))] {
					h.SetRefAt(r, uint32(off), vmheap.Nil)
				}
			}
		case vmheap.KindRefArray:
			n := h.ArrayLen(r)
			for i := uint32(0); i < n; i++ {
				if dead[vmheap.Ref(h.ArrayWord(r, i))] {
					h.SetArrayWord(r, i, 0)
				}
			}
		}
	})
}

// SweepFlags returns the header bits the sweep must clear on survivors:
// the owned bit is recomputed by each cycle's ownership phase.
func (e *Engine) SweepFlags() uint64 { return vmheap.FlagOwned }

// FreeHook returns the callback the collector passes as SweepOptions.OnFree,
// or nil when no per-object table has entries (so sweeps of
// assertion-free heaps pay no per-free call). It purges regionObjs as
// objects are reclaimed. Purging at reclamation time — instead of with a
// liveness predicate in PreSweep — closes the stale-entry window: a sweep
// whose liveness rules differ from the predicate (or a sweep driven without
// PreSweep at all) would otherwise leave regionObjs entries for freed Refs,
// and a later allocation recycling such a Ref would be misreported as a
// RegionSurvivor if it is ever asserted dead.
func (e *Engine) FreeHook() func(vmheap.Ref, uint64) {
	if e.regionTab != nil {
		// Dense mode: the purge locks only the freed ref's zone shard, so
		// concurrent zone sweeps free without touching the engine guard.
		if e.regionTab.Len() == 0 {
			return nil
		}
		return func(r vmheap.Ref, _ uint64) { e.regionTab.Unset(uint32(r)) }
	}
	e.mu.Lock()
	n := len(e.regionMap)
	e.mu.Unlock()
	if n == 0 {
		return nil
	}
	return func(r vmheap.Ref, _ uint64) {
		e.mu.Lock()
		delete(e.regionMap, r)
		e.mu.Unlock()
	}
}

// InstanceLimitFor exposes a class's current limit (tools and tests).
func (e *Engine) InstanceLimitFor(c *classes.Class) int64 { return c.InstanceLimit() }
