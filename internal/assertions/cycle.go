package assertions

import (
	"repro/internal/classes"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vmheap"
)

// This file contains the collector-facing side of the engine: the hooks
// wired into the trace loops and the begin/end-of-cycle table maintenance.

// BeginCycle prepares the engine for a collection: per-cycle report
// deduplication is reset and the cycle counter advances.
func (e *Engine) BeginCycle() {
	e.cycle++
	e.reportedDead = nil
	e.reportedShared = nil
	e.reportedImproper = nil
	e.halt = nil
}

// Halted returns the violation for which the handler requested Halt during
// the current cycle, or nil.
func (e *Engine) Halted() *report.Violation { return e.halt }

// Checks returns the assertion callouts for the Infrastructure trace loop.
func (e *Engine) Checks() trace.Checks {
	return trace.Checks{
		Dead:    e.onDead,
		Shared:  e.onShared,
		Unowned: e.onUnowned,
	}
}

// OwnershipPhase returns the phase descriptor for the collector, or nil when
// no ownership assertions are registered.
func (e *Engine) OwnershipPhase() *trace.OwnershipPhase {
	if !e.HasOwnership() {
		return nil
	}
	return &trace.OwnershipPhase{
		Owners:   e.owners,
		OwnerOf:  e.ownerOf,
		IsOwner:  func(r vmheap.Ref) bool { return e.heap.Flags(r, vmheap.FlagOwner) != 0 },
		Improper: e.onImproper,
	}
}

// pathElems resolves a raw reference path into class-named elements.
func (e *Engine) pathElems(path []vmheap.Ref) []report.PathElem {
	out := make([]report.PathElem, len(path))
	for i, r := range path {
		out[i] = report.PathElem{Class: e.reg.Name(e.heap.ClassID(r)), Ref: r}
	}
	return out
}

// dispatch routes a violation to the handler and folds the returned action:
// Halt is recorded for the collector to surface after the cycle completes
// (the heap must reach a consistent state first), and the effective action
// for the tracer is returned.
func (e *Engine) dispatch(v *report.Violation) report.Action {
	e.stats.Violations++
	act := report.Continue
	if e.handler != nil {
		act = e.handler.HandleViolation(v)
	}
	if act == report.Halt {
		if e.halt == nil {
			e.halt = v
		}
		return report.Continue
	}
	return act
}

// onDead handles an encounter of a dead-asserted object during tracing. The
// handler runs once per object per cycle; its action is cached so Force is
// applied uniformly to every incoming reference.
func (e *Engine) onDead(obj vmheap.Ref, path func() []vmheap.Ref) report.Action {
	if act, seen := e.reportedDead[obj]; seen {
		return act
	}
	kind := report.DeadReachable
	if e.regionObjs[obj] {
		kind = report.RegionSurvivor
	}
	v := &report.Violation{
		Kind:   kind,
		Cycle:  e.cycle,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems(path()),
	}
	act := e.dispatch(v)
	if e.reportedDead == nil {
		e.reportedDead = make(map[vmheap.Ref]report.Action)
	}
	e.reportedDead[obj] = act
	return act
}

// onShared handles the second encounter of an unshared-asserted object.
func (e *Engine) onShared(obj vmheap.Ref, path func() []vmheap.Ref) {
	if e.reportedShared[obj] {
		return
	}
	if e.reportedShared == nil {
		e.reportedShared = make(map[vmheap.Ref]bool)
	}
	e.reportedShared[obj] = true
	e.dispatch(&report.Violation{
		Kind:   report.SharedObject,
		Cycle:  e.cycle,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems(path()),
	})
}

// onUnowned handles a root-phase visit of an ownee without the owned bit.
func (e *Engine) onUnowned(obj vmheap.Ref, path func() []vmheap.Ref) {
	if e.reportedImproper[obj] {
		// Already reported as improper use during the ownership phase;
		// a second warning for the same object would be noise.
		return
	}
	ownerName := "unknown owner"
	if idx, ok := e.ownerOf(obj); ok {
		if o := e.owners[idx]; o != vmheap.Nil {
			ownerName = e.reg.Name(e.heap.ClassID(o))
		}
	}
	e.dispatch(&report.Violation{
		Kind:   report.UnownedOwnee,
		Cycle:  e.cycle,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems(path()),
		Owner:  ownerName,
	})
}

// onImproper handles an ownee reached from a different owner's scan.
func (e *Engine) onImproper(obj vmheap.Ref, scanningOwner int, path func() []vmheap.Ref) {
	if e.reportedImproper[obj] {
		return
	}
	if e.reportedImproper == nil {
		e.reportedImproper = make(map[vmheap.Ref]bool)
	}
	e.reportedImproper[obj] = true
	owner := "unknown owner"
	if o := e.owners[scanningOwner]; o != vmheap.Nil {
		owner = e.reg.Name(e.heap.ClassID(o))
	}
	e.dispatch(&report.Violation{
		Kind:   report.ImproperOwnership,
		Cycle:  e.cycle,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems(path()),
		Owner:  owner,
	})
}

// CheckInstanceLimits runs at the end of the mark phase: tracked classes
// whose live counts exceed their limits are reported. No path is available
// (the paper's Section 2.7 limitation for assert-instances).
func (e *Engine) CheckInstanceLimits() {
	for _, over := range e.reg.CheckLimits() {
		e.dispatch(&report.Violation{
			Kind:  report.TooManyInstances,
			Cycle: e.cycle,
			Class: over.Class.Name,
			Count: over.Count,
			Limit: over.Limit,
		})
	}
}

// CheckInstanceTotals judges instance limits against caller-summed counts
// (in Registry trackedIDs order, as drained by Registry.TakeCounts). The
// zoned runtime uses this after a full zone rotation: each zone collection
// counts only its own zone's live instances, so only the sum across every
// zone is comparable to a whole-heap count.
func (e *Engine) CheckInstanceTotals(counts []int64) {
	for _, over := range e.reg.CheckTotals(counts) {
		e.dispatch(&report.Violation{
			Kind:  report.TooManyInstances,
			Cycle: e.cycle,
			Class: over.Class.Name,
			Count: over.Count,
			Limit: over.Limit,
		})
	}
}

// ReportRetireSurvivor reports one object that survived a Zone.Retire: the
// zone was declared dead wholesale, but an out-of-zone reference or root
// still reaches this object. Retire is the bulk form of assert-alldead over
// a zone's allocations, so survivors carry the RegionSurvivor kind; no
// trace ran, so the path holds only the object itself. The caller brackets
// the whole retire in one BeginCycle and reports each survivor once.
func (e *Engine) ReportRetireSurvivor(obj vmheap.Ref) {
	e.dispatch(&report.Violation{
		Kind:   report.RegionSurvivor,
		Cycle:  e.cycle,
		Object: obj,
		Class:  e.reg.Name(e.heap.ClassID(obj)),
		Path:   e.pathElems([]vmheap.Ref{obj}),
	})
}

// PreSweep runs after the mark phase and before the sweep, while unmarked
// objects are still parseable. It purges every engine table of entries
// about to be reclaimed, so no table ever holds a reference into freed (and
// reusable) memory:
//
//   - region queues drop dying entries (those objects were born and died
//     inside the region — the assertion holds for them);
//   - dying ownees leave the ownee table (the paper: "we must remove each
//     unreachable ownee after a GC");
//   - dying owners vacate their slot, and their surviving ownees' pairs are
//     dropped (ownership of a collected owner is no longer checkable).
//
// regionObjs is not purged here but by FreeHook during the sweep itself:
// keying the purge on actual reclamation (rather than on a liveness
// predicate that must agree with the sweep's) is what guarantees a recycled
// Ref can never inherit a previous object's region standing.
//
// The live predicate tells the engine which objects survive the imminent
// sweep: for a full collection that is the mark bit; for a generational
// minor collection, mark bit or maturity.
func (e *Engine) PreSweep(live func(vmheap.Ref) bool) {
	marked := live

	for _, t := range e.threads.All() {
		t.PurgeRegionQueues(marked)
	}

	if len(e.ownees) == 0 && len(e.owners) == 0 {
		return
	}

	// Vacate dying owners first so their ownees can be dropped in the
	// same pass.
	deadOwner := make([]bool, len(e.owners))
	var dying []vmheap.Ref
	for i, o := range e.owners {
		if o == vmheap.Nil {
			continue
		}
		if !marked(o) {
			deadOwner[i] = true
			dying = append(dying, o)
			delete(e.ownerIndex, o)
			// The object is about to be freed; its header dies with it,
			// so there is no bit to clear.
			e.owners[i] = vmheap.Nil
		}
	}
	// An owner is deliberately never marked by its own region's scans (back
	// edges must not keep a collectable owner alive), so an owner can die
	// while its region survives on the pre-phase marks. Null the survivors'
	// references into the dying owners — left in place they would dangle
	// into freed, recyclable memory.
	if len(dying) > 0 {
		e.nullRefsTo(dying, marked)
	}

	kept := e.ownees[:0]
	for _, entry := range e.ownees {
		switch {
		case !marked(entry.obj):
			// Dying ownee: drop the pair; the header dies with it.
		case deadOwner[entry.owner]:
			// Surviving ownee of a dead owner: drop the pair and clear
			// the stale ownee bit so the next trace does not misreport.
			e.heap.ClearFlags(entry.obj, vmheap.FlagOwnee|vmheap.FlagOwned)
		default:
			kept = append(kept, entry)
		}
	}
	e.ownees = kept
}

// nullRefsTo nulls every reference slot of a surviving object that points
// at one of the dying owner objects. Only objects marked by the ownership
// phase's truncation rules can hold such references (any root-phase scan
// reaching an owner would have marked it), so this runs only on cycles that
// actually collect an owner.
func (e *Engine) nullRefsTo(dying []vmheap.Ref, live func(vmheap.Ref) bool) {
	dead := make(map[vmheap.Ref]bool, len(dying))
	for _, r := range dying {
		dead[r] = true
	}
	h := e.heap
	h.Iterate(func(r vmheap.Ref, _ uint64) {
		if !live(r) {
			return
		}
		switch h.KindOf(r) {
		case vmheap.KindScalar:
			for _, off := range e.reg.RefOffsets(h.ClassID(r)) {
				if dead[h.RefAt(r, uint32(off))] {
					h.SetRefAt(r, uint32(off), vmheap.Nil)
				}
			}
		case vmheap.KindRefArray:
			n := h.ArrayLen(r)
			for i := uint32(0); i < n; i++ {
				if dead[vmheap.Ref(h.ArrayWord(r, i))] {
					h.SetArrayWord(r, i, 0)
				}
			}
		}
	})
}

// SweepFlags returns the header bits the sweep must clear on survivors:
// the owned bit is recomputed by each cycle's ownership phase.
func (e *Engine) SweepFlags() uint64 { return vmheap.FlagOwned }

// FreeHook returns the callback the collector passes as SweepOptions.OnFree,
// or nil when no per-object table has entries (so sweeps of
// assertion-free heaps pay no per-free call). It purges regionObjs as
// objects are reclaimed. Purging at reclamation time — instead of with a
// liveness predicate in PreSweep — closes the stale-entry window: a sweep
// whose liveness rules differ from the predicate (or a sweep driven without
// PreSweep at all) would otherwise leave regionObjs entries for freed Refs,
// and a later allocation recycling such a Ref would be misreported as a
// RegionSurvivor if it is ever asserted dead.
func (e *Engine) FreeHook() func(vmheap.Ref, uint64) {
	if len(e.regionObjs) == 0 {
		return nil
	}
	return func(r vmheap.Ref, _ uint64) { delete(e.regionObjs, r) }
}

// InstanceLimitFor exposes a class's current limit (tools and tests).
func (e *Engine) InstanceLimitFor(c *classes.Class) int64 { return c.InstanceLimit() }
