// Package assertions implements the GC-assertion engine: the bookkeeping
// behind the five assertions of the paper (assert-dead, start-region /
// assert-alldead, assert-instances, assert-unshared, assert-ownedby), the
// violation construction with full heap paths, and the table maintenance
// the collector performs around each cycle.
//
// The engine's state mirrors the paper's metadata budget: lifetime and
// sharing assertions live entirely in spare object-header bits; instance
// limits live in two words on the class; ownership lives in a sorted
// owner/ownee table searched with binary search.
package assertions

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/classes"
	"repro/internal/report"
	"repro/internal/sidetab"
	"repro/internal/threads"
	"repro/internal/vmheap"
)

// Stats counts assertion activity over the lifetime of a runtime.
type Stats struct {
	DeadAsserts     uint64 // assert-dead calls (including region-driven ones)
	UnsharedAsserts uint64
	OwnedByAsserts  uint64
	InstanceAsserts uint64
	RegionsStarted  uint64
	RegionsEnded    uint64
	Violations      uint64
	// OwneesLive is the current ownee-table size.
	OwneesLive int
}

// owneeEntry associates one ownee object with the index of its owner in the
// owners slice. The ownees slice is kept sorted by Ref for binary search,
// as in the paper.
type owneeEntry struct {
	obj   vmheap.Ref
	owner int32
}

// Engine holds all assertion state for one runtime.
type Engine struct {
	heap    *vmheap.Heap
	reg     *classes.Registry
	threads *threads.Set
	handler report.Handler

	cycle atomic.Uint64

	// mu guards the engine's shared, long-lived tables (regionObjs, the
	// region queues of every thread, ownership, stats) and the handler
	// chain against concurrent zone collections. It is a near-leaf lock:
	// acquired after the runtime lock and the zone locks, and nothing is
	// acquired under it. Per-collection state lives on a Cycle and needs
	// no lock (see cycle.go).
	mu sync.Mutex

	// defaultCycle is the cycle used by the serialized collection paths
	// (whole-heap GC, GCZones rotations): BeginCycle resets it, and
	// Checks/Halted are bound to it. Concurrent zone collections create
	// private cycles with NewCycle.
	defaultCycle *Cycle

	// Region standing — which dead-asserted objects came from an
	// assert-alldead bracket, so their violations carry the RegionSurvivor
	// kind; entries are purged as objects are freed. The dense form is a
	// zone-sharded epoch table (internal/sidetab): the per-free purge and
	// the per-encounter probe lock only the shard of the ref's own zone,
	// so concurrent zone collections never contend here (shard locks are
	// leaves, safe under e.mu). mapTables selects the original map-backed
	// form, kept as the differential-testing and benchmark baseline; the
	// map is then guarded by e.mu as before.
	mapTables bool
	regionTab *sidetab.ShardedBits // nil when mapTables
	regionMap map[vmheap.Ref]bool  // nil unless mapTables

	// Ownership tables. owners may contain Nil holes after an owner is
	// collected; ownerTab (or ownerMap under mapTables) maps live owner
	// objects to their slot. Guarded by e.mu in both forms — ownership
	// assertions always escalate to whole-heap collections, so this table
	// sees no zone concurrency.
	owners   []vmheap.Ref
	ownerTab *sidetab.Table[int32]
	ownerMap map[vmheap.Ref]int
	ownees   []owneeEntry // sorted by obj

	// Per-cycle dedupe table pool (see cycle.go): released cycleTabs wait
	// here, cleared, for the next collection; allTabs tracks every set
	// ever created for footprint accounting. Both guarded by e.mu.
	tabPool []*cycleTabs
	allTabs []*cycleTabs

	stats Stats
}

// New creates an engine bound to the given heap, registry, thread set and
// violation handler.
func New(h *vmheap.Heap, reg *classes.Registry, ts *threads.Set, handler report.Handler) *Engine {
	e := &Engine{
		heap:      h,
		reg:       reg,
		threads:   ts,
		handler:   handler,
		regionTab: sidetab.NewShardedBits(h.ZoneRanges()),
		ownerTab:  sidetab.NewTable[int32](),
	}
	// The initial default cycle exists so pre-collection paths never see a
	// nil cycle; it must NOT consume a sequence number — the first real
	// collection's BeginCycle is cycle 1, as reports have always numbered.
	e.defaultCycle = &Cycle{e: e}
	return e
}

// SetHandler replaces the violation handler.
func (e *Engine) SetHandler(h report.Handler) { e.handler = h }

// Guard exposes the engine's table lock so the runtime can serialize its
// own touches of engine-shared state (thread creation, region-queue
// recording on the allocation path) against concurrent zone collections.
func (e *Engine) Guard() *sync.Mutex { return &e.mu }

// SetMapTables switches the engine to the original map-backed side tables
// (the reference implementation the sidetab differential tests and the
// assertbench baseline run against). Must be called before any region,
// ownership, or collection activity; existing dense entries do not
// migrate.
func (e *Engine) SetMapTables(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mapTables = on
	if on {
		e.regionTab = nil
		e.ownerTab = nil
		e.regionMap = make(map[vmheap.Ref]bool)
		e.ownerMap = make(map[vmheap.Ref]int)
	} else {
		e.regionTab = sidetab.NewShardedBits(e.heap.ZoneRanges())
		e.ownerTab = sidetab.NewTable[int32]()
		e.regionMap = nil
		e.ownerMap = nil
	}
}

// regionHas probes region standing. Dense mode locks only the ref's zone
// shard; map mode takes e.mu (callers never hold it here).
func (e *Engine) regionHas(r vmheap.Ref) bool {
	if e.regionTab != nil {
		return e.regionTab.Get(uint32(r))
	}
	e.mu.Lock()
	ok := e.regionMap[r]
	e.mu.Unlock()
	return ok
}

// regionSet and regionDel mutate region standing; callers hold e.mu in
// map mode (the dense shard locks are safe under it).
func (e *Engine) regionSet(r vmheap.Ref) {
	if e.regionTab != nil {
		e.regionTab.Set(uint32(r))
		return
	}
	e.regionMap[r] = true
}

func (e *Engine) regionDel(r vmheap.Ref) {
	if e.regionTab != nil {
		e.regionTab.Unset(uint32(r))
		return
	}
	delete(e.regionMap, r)
}

// ownerIdx looks up an owner's slot; caller holds e.mu.
func (e *Engine) ownerIdx(r vmheap.Ref) (int, bool) {
	if e.ownerTab != nil {
		v, ok := e.ownerTab.Get(uint32(r))
		return int(v), ok
	}
	i, ok := e.ownerMap[r]
	return i, ok
}

func (e *Engine) setOwnerIdx(r vmheap.Ref, idx int) {
	if e.ownerTab != nil {
		e.ownerTab.Set(uint32(r), int32(idx))
		return
	}
	e.ownerMap[r] = idx
}

func (e *Engine) delOwnerIdx(r vmheap.Ref) {
	if e.ownerTab != nil {
		e.ownerTab.Delete(uint32(r))
		return
	}
	delete(e.ownerMap, r)
}

// SideTabFootprint sums the dense side tables' materialized chunk bytes
// and lifetime epoch rollovers — the engine-owned tables plus every
// per-cycle table set. Zero in map mode. Safe concurrently with
// collections (the counters are atomic; the table registry is under e.mu).
func (e *Engine) SideTabFootprint() (chunkBytes, rollovers uint64) {
	e.mu.Lock()
	tabs := e.allTabs
	e.mu.Unlock()
	add := func(s sidetab.Stats) {
		chunkBytes += s.ChunkBytes
		rollovers += s.Rollovers
	}
	if e.regionTab != nil {
		add(e.regionTab.Stats())
	}
	if e.ownerTab != nil {
		add(e.ownerTab.Stats())
	}
	for _, t := range tabs {
		add(t.dead.Stats())
		add(t.shared.Stats())
		add(t.improper.Stats())
	}
	return chunkBytes, rollovers
}

// Stats returns a snapshot of assertion activity.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.OwneesLive = len(e.ownees)
	return s
}

// ---------------------------------------------------------------------------
// Assertion entry points (called by the runtime on behalf of the mutator)

// errNotObject is wrapped by assertion entry points handed a bad reference.
var errNotObject = errors.New("reference does not point to an allocated object")

func (e *Engine) checkObject(r vmheap.Ref, what string) error {
	if !e.heap.IsObject(r) {
		return fmt.Errorf("assertions: %s: %w", what, errNotObject)
	}
	return nil
}

// AssertDead implements assert-dead(p): the object is marked with the dead
// header bit and reported if still reachable at the next collection.
func (e *Engine) AssertDead(r vmheap.Ref) error {
	if err := e.checkObject(r, "assert-dead"); err != nil {
		return err
	}
	e.heap.SetFlags(r, vmheap.FlagDead)
	e.mu.Lock()
	e.stats.DeadAsserts++
	e.mu.Unlock()
	return nil
}

// AssertUnshared implements assert-unshared(p): the object is marked with
// the unshared header bit and reported if the trace encounters it twice.
func (e *Engine) AssertUnshared(r vmheap.Ref) error {
	if err := e.checkObject(r, "assert-unshared"); err != nil {
		return err
	}
	e.heap.SetFlags(r, vmheap.FlagUnshared)
	e.mu.Lock()
	e.stats.UnsharedAsserts++
	e.mu.Unlock()
	return nil
}

// AssertInstances implements assert-instances(T, I).
func (e *Engine) AssertInstances(c *classes.Class, limit int64, includeSubclasses bool) error {
	if limit < 0 {
		return fmt.Errorf("assertions: assert-instances: negative limit %d", limit)
	}
	e.reg.SetInstanceLimit(c, limit, includeSubclasses)
	e.mu.Lock()
	e.stats.InstanceAsserts++
	e.mu.Unlock()
	return nil
}

// StartRegion implements start-region() on the given thread.
func (e *Engine) StartRegion(t *threads.Thread) {
	e.mu.Lock()
	t.StartRegion()
	e.stats.RegionsStarted++
	e.mu.Unlock()
}

// AssertAllDead implements assert-alldead(): every object allocated in the
// innermost region bracket is asserted dead (the paper implements it by
// "calling assert-dead on each object in the queue"). Objects recorded in
// the queue that died during an intervening GC were purged by the collector
// and are correctly absent.
func (e *Engine) AssertAllDead(t *threads.Thread) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	queue, err := t.EndRegion()
	if err != nil {
		return err
	}
	e.stats.RegionsEnded++
	for _, r := range queue {
		if !e.heap.IsObject(r) {
			// The region object was reclaimed (or its Ref now points into
			// a free chunk): it must not retain region standing either.
			e.regionDel(r)
			continue
		}
		e.heap.SetFlags(r, vmheap.FlagDead)
		e.regionSet(r)
		e.stats.DeadAsserts++
	}
	return nil
}

// AssertOwnedBy implements assert-ownedby(p, q): the ownee q must remain
// reachable through the owner p for as long as it is reachable at all.
// The paper requires owner regions to be disjoint; the engine rejects
// configurations that structurally violate that (an object serving as both
// owner and ownee, or an ownee with two different owners).
func (e *Engine) AssertOwnedBy(owner, ownee vmheap.Ref) error {
	if err := e.checkObject(owner, "assert-ownedby owner"); err != nil {
		return err
	}
	if err := e.checkObject(ownee, "assert-ownedby ownee"); err != nil {
		return err
	}
	if owner == ownee {
		return errors.New("assertions: assert-ownedby: object cannot own itself")
	}
	if e.heap.Flags(owner, vmheap.FlagOwnee) != 0 {
		return errors.New("assertions: assert-ownedby: owner is already an ownee of another owner")
	}
	if e.heap.Flags(ownee, vmheap.FlagOwner) != 0 {
		return errors.New("assertions: assert-ownedby: ownee is already an owner")
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	idx, known := e.ownerIdx(owner)
	if !known {
		idx = len(e.owners)
		e.owners = append(e.owners, owner)
		e.setOwnerIdx(owner, idx)
		e.heap.SetFlags(owner, vmheap.FlagOwner)
	}

	// Sorted insert into the ownee table (the paper's sorted arrays).
	i := sort.Search(len(e.ownees), func(i int) bool { return e.ownees[i].obj >= ownee })
	if i < len(e.ownees) && e.ownees[i].obj == ownee {
		if e.ownees[i].owner == int32(idx) {
			return nil // duplicate assertion: no-op
		}
		return errors.New("assertions: assert-ownedby: ownee already has a different owner")
	}
	e.ownees = append(e.ownees, owneeEntry{})
	copy(e.ownees[i+1:], e.ownees[i:])
	e.ownees[i] = owneeEntry{obj: ownee, owner: int32(idx)}
	e.heap.SetFlags(ownee, vmheap.FlagOwnee)
	e.stats.OwnedByAsserts++
	return nil
}

// ownerOf binary-searches the ownee table. This runs once per ownee per
// trace (the paper's "n log n" cost), so it is hand-rolled rather than
// paying sort.Search's per-probe closure call.
func (e *Engine) ownerOf(r vmheap.Ref) (int, bool) {
	lo, hi := 0, len(e.ownees)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.ownees[mid].obj < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.ownees) && e.ownees[lo].obj == r {
		return int(e.ownees[lo].owner), true
	}
	return 0, false
}

// HasOwnership reports whether any owner/ownee pairs are registered; the
// collector skips the ownership phase entirely when false.
func (e *Engine) HasOwnership() bool { return len(e.ownees) > 0 }

// NumOwners returns the number of owner slots (including holes).
func (e *Engine) NumOwners() int { return len(e.owners) }

// NumOwnees returns the current ownee-table size.
func (e *Engine) NumOwnees() int { return len(e.ownees) }
