package assertions

import (
	"testing"

	"repro/internal/classes"
	"repro/internal/report"
	"repro/internal/threads"
	"repro/internal/trace"
	"repro/internal/vmheap"
)

// env bundles an engine with its substrate for direct tests.
type env struct {
	h   *vmheap.Heap
	reg *classes.Registry
	ts  *threads.Set
	rec *report.Recorder
	e   *Engine

	node *classes.Class
	next uint32
}

func newEnv(t testing.TB) *env {
	t.Helper()
	e := &env{
		h:   vmheap.New(1 << 14),
		reg: classes.NewRegistry(),
		ts:  threads.NewSet(),
		rec: &report.Recorder{},
	}
	e.node = e.reg.MustDefine("Node", nil,
		classes.Field{Name: "next", Kind: classes.RefKind})
	e.next = uint32(e.node.MustFieldIndex("next"))
	e.e = New(e.h, e.reg, e.ts, e.rec)
	return e
}

func (e *env) alloc(t testing.TB) vmheap.Ref {
	t.Helper()
	r, err := e.h.Alloc(vmheap.KindScalar, e.node.ID, e.node.FieldWords)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAssertDeadSetsBit(t *testing.T) {
	e := newEnv(t)
	r := e.alloc(t)
	if err := e.e.AssertDead(r); err != nil {
		t.Fatal(err)
	}
	if e.h.Flags(r, vmheap.FlagDead) == 0 {
		t.Error("dead bit not set")
	}
	if e.e.Stats().DeadAsserts != 1 {
		t.Error("counter not bumped")
	}
}

func TestAssertOnBadRefErrors(t *testing.T) {
	e := newEnv(t)
	if err := e.e.AssertDead(vmheap.Nil); err == nil {
		t.Error("AssertDead(Nil) accepted")
	}
	if err := e.e.AssertUnshared(vmheap.Nil); err == nil {
		t.Error("AssertUnshared(Nil) accepted")
	}
	r := e.alloc(t)
	if err := e.e.AssertOwnedBy(vmheap.Nil, r); err == nil {
		t.Error("nil owner accepted")
	}
	if err := e.e.AssertOwnedBy(r, vmheap.Nil); err == nil {
		t.Error("nil ownee accepted")
	}
}

func TestAssertUnsharedSetsBit(t *testing.T) {
	e := newEnv(t)
	r := e.alloc(t)
	if err := e.e.AssertUnshared(r); err != nil {
		t.Fatal(err)
	}
	if e.h.Flags(r, vmheap.FlagUnshared) == 0 {
		t.Error("unshared bit not set")
	}
}

func TestAssertInstancesNegativeLimit(t *testing.T) {
	e := newEnv(t)
	if err := e.e.AssertInstances(e.node, -1, false); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestAssertOwnedBySetsBitsAndTables(t *testing.T) {
	e := newEnv(t)
	owner := e.alloc(t)
	a, b := e.alloc(t), e.alloc(t)
	if err := e.e.AssertOwnedBy(owner, a); err != nil {
		t.Fatal(err)
	}
	if err := e.e.AssertOwnedBy(owner, b); err != nil {
		t.Fatal(err)
	}
	if e.h.Flags(owner, vmheap.FlagOwner) == 0 {
		t.Error("owner bit not set")
	}
	if e.h.Flags(a, vmheap.FlagOwnee) == 0 {
		t.Error("ownee bit not set")
	}
	if e.e.NumOwners() != 1 {
		t.Errorf("NumOwners = %d", e.e.NumOwners())
	}
	if e.e.NumOwnees() != 2 {
		t.Errorf("NumOwnees = %d", e.e.NumOwnees())
	}
	if !e.e.HasOwnership() {
		t.Error("HasOwnership false")
	}

	idx, ok := e.e.ownerOf(a)
	if !ok || e.e.OwnershipPhase().Owners[idx] != owner {
		t.Error("ownerOf lookup wrong")
	}
	if _, ok := e.e.ownerOf(owner); ok {
		t.Error("owner found in ownee table")
	}
}

func TestOwnerOfBoundaries(t *testing.T) {
	e := newEnv(t)
	owner := e.alloc(t)
	var ownees []vmheap.Ref
	for i := 0; i < 33; i++ {
		r := e.alloc(t)
		if err := e.e.AssertOwnedBy(owner, r); err != nil {
			t.Fatal(err)
		}
		ownees = append(ownees, r)
	}
	for _, r := range ownees {
		if _, ok := e.e.ownerOf(r); !ok {
			t.Errorf("ownee %d not found", r)
		}
	}
	// Probes around the table: below the first, above the last, between.
	if _, ok := e.e.ownerOf(vmheap.Ref(2)); ok && e.h.Flags(vmheap.Ref(2), vmheap.FlagOwnee) == 0 {
		t.Error("phantom hit below table")
	}
	if _, ok := e.e.ownerOf(vmheap.Ref(1 << 30)); ok {
		t.Error("phantom hit above table")
	}
}

func TestDispatchHaltDeferred(t *testing.T) {
	e := newEnv(t)
	e.e.SetHandler(report.HandlerFunc(func(*report.Violation) report.Action {
		return report.Halt
	}))
	e.e.BeginCycle()
	act := e.e.defaultCycle.onDead(e.alloc(t), func() []vmheap.Ref { return nil })
	if act != report.Continue {
		t.Errorf("halt leaked to tracer: %v", act)
	}
	if e.e.Halted() == nil {
		t.Error("halt not recorded")
	}
	e.e.BeginCycle()
	if e.e.Halted() != nil {
		t.Error("halt survived BeginCycle")
	}
}

func TestOnDeadActionCachedPerObject(t *testing.T) {
	e := newEnv(t)
	calls := 0
	e.e.SetHandler(report.HandlerFunc(func(*report.Violation) report.Action {
		calls++
		return report.Force
	}))
	e.e.BeginCycle()
	obj := e.alloc(t)
	path := func() []vmheap.Ref { return []vmheap.Ref{obj} }
	a1 := e.e.defaultCycle.onDead(obj, path)
	a2 := e.e.defaultCycle.onDead(obj, path)
	if calls != 1 {
		t.Errorf("handler called %d times, want 1", calls)
	}
	if a1 != report.Force || a2 != report.Force {
		t.Error("cached action differs")
	}
	// A new cycle consults the handler again.
	e.e.BeginCycle()
	e.e.defaultCycle.onDead(obj, path)
	if calls != 2 {
		t.Errorf("handler calls after new cycle = %d, want 2", calls)
	}
}

func TestRegionViolationKind(t *testing.T) {
	e := newEnv(t)
	th := e.ts.New("main")
	e.e.StartRegion(th)
	obj := e.alloc(t)
	th.RecordRegionAlloc(obj)
	if err := e.e.AssertAllDead(th); err != nil {
		t.Fatal(err)
	}
	if e.h.Flags(obj, vmheap.FlagDead) == 0 {
		t.Error("region object not marked dead")
	}
	e.e.BeginCycle()
	e.e.defaultCycle.onDead(obj, func() []vmheap.Ref { return []vmheap.Ref{obj} })
	vs := e.rec.ByKind(report.RegionSurvivor)
	if len(vs) != 1 {
		t.Fatalf("RegionSurvivor violations = %d", len(vs))
	}
}

func TestPreSweepPurgesDyingOwnee(t *testing.T) {
	e := newEnv(t)
	owner := e.alloc(t)
	ownee := e.alloc(t)
	e.e.AssertOwnedBy(owner, ownee)
	// Owner survives, ownee dies.
	e.h.SetFlags(owner, vmheap.FlagMark)
	e.e.PreSweep(func(r vmheap.Ref) bool { return e.h.Flags(r, vmheap.FlagMark) != 0 })
	if e.e.NumOwnees() != 0 {
		t.Error("dying ownee not purged")
	}
	if e.e.NumOwners() != 1 {
		t.Error("live owner purged")
	}
}

func TestPreSweepPurgesDeadOwner(t *testing.T) {
	e := newEnv(t)
	owner := e.alloc(t)
	ownee := e.alloc(t)
	e.e.AssertOwnedBy(owner, ownee)
	// Ownee survives, owner dies: the pair is dropped and the stale
	// ownee bit cleared.
	e.h.SetFlags(ownee, vmheap.FlagMark)
	e.e.PreSweep(func(r vmheap.Ref) bool { return e.h.Flags(r, vmheap.FlagMark) != 0 })
	if e.e.NumOwnees() != 0 {
		t.Error("orphan pair not dropped")
	}
	if e.h.Flags(ownee, vmheap.FlagOwnee) != 0 {
		t.Error("stale ownee bit not cleared")
	}
	if e.e.OwnershipPhase() != nil {
		t.Error("phase still reported with no pairs")
	}
}

func TestPreSweepPurgesRegionQueues(t *testing.T) {
	e := newEnv(t)
	th := e.ts.New("main")
	e.e.StartRegion(th)
	dying := e.alloc(t)
	surviving := e.alloc(t)
	th.RecordRegionAlloc(dying)
	th.RecordRegionAlloc(surviving)
	e.h.SetFlags(surviving, vmheap.FlagMark)
	e.e.PreSweep(func(r vmheap.Ref) bool { return e.h.Flags(r, vmheap.FlagMark) != 0 })
	q, err := th.EndRegion()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0] != surviving {
		t.Errorf("queue after purge = %v", q)
	}
}

func TestChecksWiring(t *testing.T) {
	e := newEnv(t)
	c := e.e.Checks()
	if c.Dead == nil || c.Shared == nil || c.Unowned == nil {
		t.Error("checks not fully wired")
	}
	var _ trace.Checks = c
}

func TestCheckInstanceLimitsDispatch(t *testing.T) {
	e := newEnv(t)
	e.e.AssertInstances(e.node, 0, false)
	e.reg.CountInstance(e.node.ID)
	e.e.BeginCycle()
	e.e.CheckInstanceLimits()
	vs := e.rec.ByKind(report.TooManyInstances)
	if len(vs) != 1 || vs[0].Count != 1 || vs[0].Limit != 0 {
		t.Errorf("violations = %+v", vs)
	}
}

func TestOnSharedDedupePerCycle(t *testing.T) {
	e := newEnv(t)
	obj := e.alloc(t)
	path := func() []vmheap.Ref { return []vmheap.Ref{obj} }
	e.e.BeginCycle()
	e.e.defaultCycle.onShared(obj, path)
	e.e.defaultCycle.onShared(obj, path) // third encounter: same cycle, no re-report
	if got := len(e.rec.ByKind(report.SharedObject)); got != 1 {
		t.Errorf("shared reports = %d, want 1", got)
	}
	e.e.BeginCycle()
	e.e.defaultCycle.onShared(obj, path)
	if got := len(e.rec.ByKind(report.SharedObject)); got != 2 {
		t.Errorf("shared reports after new cycle = %d, want 2", got)
	}
}

func TestOnUnownedNamesOwner(t *testing.T) {
	e := newEnv(t)
	owner := e.alloc(t)
	ownee := e.alloc(t)
	if err := e.e.AssertOwnedBy(owner, ownee); err != nil {
		t.Fatal(err)
	}
	e.e.BeginCycle()
	e.e.defaultCycle.onUnowned(ownee, func() []vmheap.Ref { return []vmheap.Ref{ownee} })
	vs := e.rec.ByKind(report.UnownedOwnee)
	if len(vs) != 1 {
		t.Fatalf("unowned reports = %d", len(vs))
	}
	if vs[0].Owner != "Node" {
		t.Errorf("owner name = %q, want Node", vs[0].Owner)
	}
}

func TestOnImproperSuppressesUnowned(t *testing.T) {
	e := newEnv(t)
	owner := e.alloc(t)
	ownee := e.alloc(t)
	e.e.AssertOwnedBy(owner, ownee)
	e.e.BeginCycle()
	path := func() []vmheap.Ref { return []vmheap.Ref{ownee} }
	e.e.defaultCycle.onImproper(ownee, 0, path)
	e.e.defaultCycle.onImproper(ownee, 0, path) // deduped
	e.e.defaultCycle.onUnowned(ownee, path)     // suppressed after improper
	if got := len(e.rec.ByKind(report.ImproperOwnership)); got != 1 {
		t.Errorf("improper reports = %d, want 1", got)
	}
	if got := len(e.rec.ByKind(report.UnownedOwnee)); got != 0 {
		t.Errorf("unowned after improper = %d, want 0", got)
	}
}

func TestSweepFlagsAndLimitAccess(t *testing.T) {
	e := newEnv(t)
	if e.e.SweepFlags()&vmheap.FlagOwned == 0 {
		t.Error("SweepFlags missing FlagOwned")
	}
	e.e.AssertInstances(e.node, 7, false)
	if got := e.e.InstanceLimitFor(e.node); got != 7 {
		t.Errorf("InstanceLimitFor = %d", got)
	}
}

func TestOnUnownedDedupePerCycle(t *testing.T) {
	// Regression: onUnowned checked the improper table but never recorded
	// its own report, so a second root-phase encounter of the same unowned
	// ownee (root scan + ownee-subtree drain) warned twice in one cycle.
	for _, mapMode := range []bool{false, true} {
		name := "sidetab"
		if mapMode {
			name = "map"
		}
		t.Run(name, func(t *testing.T) {
			e := newEnv(t)
			e.e.SetMapTables(mapMode)
			owner := e.alloc(t)
			ownee := e.alloc(t)
			if err := e.e.AssertOwnedBy(owner, ownee); err != nil {
				t.Fatal(err)
			}
			path := func() []vmheap.Ref { return []vmheap.Ref{ownee} }
			e.e.BeginCycle()
			e.e.defaultCycle.onUnowned(ownee, path)
			e.e.defaultCycle.onUnowned(ownee, path) // same cycle: no re-report
			if got := len(e.rec.ByKind(report.UnownedOwnee)); got != 1 {
				t.Errorf("unowned reports = %d, want 1", got)
			}
			// An unowned report also suppresses a later improper one —
			// the two phases share a dedupe domain.
			e.e.defaultCycle.onImproper(ownee, 0, path)
			if got := len(e.rec.ByKind(report.ImproperOwnership)); got != 0 {
				t.Errorf("improper after unowned = %d, want 0", got)
			}
			e.e.BeginCycle()
			e.e.defaultCycle.onUnowned(ownee, path)
			if got := len(e.rec.ByKind(report.UnownedOwnee)); got != 2 {
				t.Errorf("unowned after new cycle = %d, want 2", got)
			}
		})
	}
}
