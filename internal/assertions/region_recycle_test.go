package assertions

import (
	"testing"

	"repro/internal/report"
	"repro/internal/vmheap"
)

// Regression: a freed region object's regionObjs entry must not survive the
// sweep that reclaims it. Before FreeHook, the entry was purged only by
// PreSweep's liveness predicate; a sweep driven without that exact
// predicate (the collector contract a new collector or a direct heap sweep
// can miss) left the entry behind, and an allocation recycling the same Ref
// inherited region standing: a plain assert-dead on the NEW object was then
// misreported as an assert-alldead (RegionSurvivor) violation.
func TestRecycledRefDoesNotInheritRegionStanding(t *testing.T) {
	e := newEnv(t)
	th := e.ts.New("main")

	// Region bracket around one allocation; assert-alldead gives the object
	// region standing and the dead bit.
	e.e.StartRegion(th)
	old := e.alloc(t)
	th.RecordRegionAlloc(old)
	if err := e.e.AssertAllDead(th); err != nil {
		t.Fatal(err)
	}

	// The object is unreachable; sweep reclaims it. The sweep carries the
	// engine's free hook — the purge path under test — but deliberately no
	// PreSweep, which on the old code was the only regionObjs purge.
	e.h.Sweep(vmheap.SweepOptions{OnFree: e.e.FreeHook()})

	// The next allocation of the same size recycles the address: the heap
	// held a single object, so after the sweep its free space starts where
	// the old object sat.
	fresh := e.alloc(t)
	if fresh != old {
		t.Fatalf("allocator did not recycle the Ref (old %d, new %d); the scenario needs address reuse", old, fresh)
	}

	// A plain assert-dead on the new object, violated: the report must say
	// assert-dead, not assert-alldead — the new object was never allocated
	// in any region.
	if err := e.e.AssertDead(fresh); err != nil {
		t.Fatal(err)
	}
	e.e.BeginCycle()
	e.e.defaultCycle.onDead(fresh, func() []vmheap.Ref { return []vmheap.Ref{fresh} })
	if vs := e.rec.ByKind(report.RegionSurvivor); len(vs) != 0 {
		t.Fatalf("recycled Ref misreported as RegionSurvivor: %v", vs[0])
	}
	if vs := e.rec.ByKind(report.DeadReachable); len(vs) != 1 {
		t.Fatalf("DeadReachable violations = %d, want 1", len(vs))
	}
}

// FreeHook must be nil while no region objects are tracked (sweeps of
// assertion-free heaps pay no per-free callback), and non-nil exactly while
// entries exist.
func TestFreeHookPresence(t *testing.T) {
	e := newEnv(t)
	if e.e.FreeHook() != nil {
		t.Error("FreeHook non-nil with no region objects")
	}
	th := e.ts.New("main")
	e.e.StartRegion(th)
	obj := e.alloc(t)
	th.RecordRegionAlloc(obj)
	if err := e.e.AssertAllDead(th); err != nil {
		t.Fatal(err)
	}
	hook := e.e.FreeHook()
	if hook == nil {
		t.Fatal("FreeHook nil with a tracked region object")
	}
	hook(obj, 0)
	if e.e.FreeHook() != nil {
		t.Error("FreeHook non-nil after the last entry was purged")
	}
}

// AssertAllDead's skip path for queue entries that no longer name objects
// must also drop any region standing recorded under that Ref.
func TestAssertAllDeadSkipPathPurgesStaleEntry(t *testing.T) {
	e := newEnv(t)
	th := e.ts.New("main")

	// First bracket: give obj region standing.
	e.e.StartRegion(th)
	obj := e.alloc(t)
	th.RecordRegionAlloc(obj)
	if err := e.e.AssertAllDead(th); err != nil {
		t.Fatal(err)
	}

	// Second bracket records the same Ref, but by the time assert-alldead
	// runs the object has been reclaimed (sweep without the free hook
	// simulates a stale entry surviving from older code paths).
	e.e.StartRegion(th)
	th.RecordRegionAlloc(obj)
	e.h.Sweep(vmheap.SweepOptions{})
	if err := e.e.AssertAllDead(th); err != nil {
		t.Fatal(err)
	}

	fresh := e.alloc(t)
	if fresh != obj {
		t.Fatalf("allocator did not recycle the Ref (old %d, new %d)", obj, fresh)
	}
	if err := e.e.AssertDead(fresh); err != nil {
		t.Fatal(err)
	}
	e.e.BeginCycle()
	e.e.defaultCycle.onDead(fresh, func() []vmheap.Ref { return []vmheap.Ref{fresh} })
	if vs := e.rec.ByKind(report.RegionSurvivor); len(vs) != 0 {
		t.Fatalf("stale entry survived the skip path: %v", vs[0])
	}
}
