// Package roots manages the global (static) roots of the gcassert runtime
// and aggregates all root sources for the collector's root-scan phase.
package roots

import (
	"fmt"

	"repro/internal/vmheap"
)

// Global is a named static root slot, the analog of a static field in a
// managed language. The collector treats every Global as a root.
type Global struct {
	Name string
	ref  vmheap.Ref
}

// Get returns the reference stored in the global.
func (g *Global) Get() vmheap.Ref { return g.ref }

// Set stores a reference in the global.
func (g *Global) Set(r vmheap.Ref) { g.ref = r }

// Table is the set of global roots in a runtime.
type Table struct {
	globals []*Global
	byName  map[string]*Global
}

// NewTable returns an empty global root table.
func NewTable() *Table {
	return &Table{byName: make(map[string]*Global)}
}

// Add creates a named global root. It panics on duplicate names; globals
// are created during setup where duplication is a programming error.
func (t *Table) Add(name string) *Global {
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("roots: global %q already exists", name))
	}
	g := &Global{Name: name}
	t.globals = append(t.globals, g)
	t.byName[name] = g
	return g
}

// ByName returns the named global, or nil.
func (t *Table) ByName(name string) *Global { return t.byName[name] }

// Remove deletes a global root, dropping its reference.
func (t *Table) Remove(name string) {
	g, ok := t.byName[name]
	if !ok {
		return
	}
	delete(t.byName, name)
	for i, x := range t.globals {
		if x == g {
			t.globals = append(t.globals[:i], t.globals[i+1:]...)
			break
		}
	}
}

// Len returns the number of globals.
func (t *Table) Len() int { return len(t.globals) }

// Each reports every global (including nil-valued ones) in creation order.
func (t *Table) Each(fn func(name string, r vmheap.Ref)) {
	for _, g := range t.globals {
		fn(g.Name, g.ref)
	}
}

// EachRoot invokes fn with the address of every non-nil global slot.
func (t *Table) EachRoot(fn func(slot *vmheap.Ref)) {
	for _, g := range t.globals {
		if g.ref != vmheap.Nil {
			fn(&g.ref)
		}
	}
}

// Source is anything that can enumerate root slots: the global table, the
// thread set, and any collector-internal sources (such as a generational
// remembered set presented as roots).
type Source interface {
	EachRoot(fn func(slot *vmheap.Ref))
}

// Multi aggregates several sources into one.
type Multi []Source

// EachRoot invokes fn for every root slot of every source in order.
func (m Multi) EachRoot(fn func(slot *vmheap.Ref)) {
	for _, s := range m {
		s.EachRoot(fn)
	}
}
