package roots

import (
	"testing"

	"repro/internal/vmheap"
)

func TestGlobalRoundtrip(t *testing.T) {
	tab := NewTable()
	g := tab.Add("config")
	if g.Get() != vmheap.Nil {
		t.Error("fresh global not Nil")
	}
	g.Set(vmheap.Ref(10))
	if g.Get() != vmheap.Ref(10) {
		t.Error("Set/Get roundtrip failed")
	}
	if tab.ByName("config") != g {
		t.Error("ByName lookup failed")
	}
	if tab.ByName("missing") != nil {
		t.Error("ByName on missing returned non-nil")
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	tab := NewTable()
	tab.Add("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	tab.Add("x")
}

func TestRemove(t *testing.T) {
	tab := NewTable()
	tab.Add("a")
	g := tab.Add("b")
	g.Set(vmheap.Ref(2))
	tab.Remove("b")
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
	n := 0
	tab.EachRoot(func(*vmheap.Ref) { n++ })
	if n != 0 {
		t.Errorf("removed global still enumerated (n=%d)", n)
	}
	tab.Remove("missing") // no-op, no panic
}

func TestEachRootSkipsNilAndWrites(t *testing.T) {
	tab := NewTable()
	tab.Add("empty")
	g := tab.Add("set")
	g.Set(vmheap.Ref(8))
	var got []vmheap.Ref
	tab.EachRoot(func(slot *vmheap.Ref) {
		got = append(got, *slot)
		*slot = vmheap.Nil
	})
	if len(got) != 1 || got[0] != 8 {
		t.Errorf("roots = %v, want [8]", got)
	}
	if g.Get() != vmheap.Nil {
		t.Error("write through slot did not stick")
	}
}

type fakeSource []vmheap.Ref

func (f fakeSource) EachRoot(fn func(*vmheap.Ref)) {
	for i := range f {
		fn(&f[i])
	}
}

func TestMulti(t *testing.T) {
	a := fakeSource{2, 4}
	b := fakeSource{6}
	m := Multi{a, b}
	var got []vmheap.Ref
	m.EachRoot(func(slot *vmheap.Ref) { got = append(got, *slot) })
	if len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("multi roots = %v", got)
	}
}
