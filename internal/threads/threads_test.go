package threads

import (
	"testing"

	"repro/internal/vmheap"
)

func TestFrameLocals(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	f := th.PushFrame(4)
	if f.NumLocals() != 4 {
		t.Fatalf("NumLocals = %d", f.NumLocals())
	}
	f.SetLocal(2, vmheap.Ref(10))
	if f.Local(2) != vmheap.Ref(10) {
		t.Error("SetLocal/Local roundtrip failed")
	}
	if f.Local(0) != vmheap.Nil {
		t.Error("fresh local not Nil")
	}
}

func TestFrameStack(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	f1 := th.PushFrame(1)
	f2 := th.PushFrame(1)
	if th.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", th.Depth())
	}
	if th.TopFrame() != f2 {
		t.Error("TopFrame != most recent")
	}
	th.PopFrame()
	if th.TopFrame() != f1 {
		t.Error("TopFrame after pop != first frame")
	}
	th.PopFrame()
	if th.TopFrame() != nil {
		t.Error("TopFrame on empty stack != nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("PopFrame on empty stack did not panic")
		}
	}()
	th.PopFrame()
}

func TestEachRootSkipsNil(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	f := th.PushFrame(3)
	f.SetLocal(0, vmheap.Ref(2))
	f.SetLocal(2, vmheap.Ref(4))
	var got []vmheap.Ref
	th.EachRoot(func(slot *vmheap.Ref) { got = append(got, *slot) })
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("roots = %v, want [2 4]", got)
	}
}

func TestEachRootWritable(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	f := th.PushFrame(1)
	f.SetLocal(0, vmheap.Ref(2))
	th.EachRoot(func(slot *vmheap.Ref) { *slot = vmheap.Nil })
	if f.Local(0) != vmheap.Nil {
		t.Error("root write through slot pointer did not stick")
	}
}

func TestRegionLifecycle(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	if th.InRegion() {
		t.Error("fresh thread in region")
	}
	th.StartRegion()
	if !th.InRegion() {
		t.Error("InRegion false after StartRegion")
	}
	th.RecordRegionAlloc(vmheap.Ref(2))
	th.RecordRegionAlloc(vmheap.Ref(4))
	q, err := th.EndRegion()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 || q[0] != 2 || q[1] != 4 {
		t.Errorf("queue = %v", q)
	}
	if th.InRegion() {
		t.Error("still in region after EndRegion")
	}
}

func TestEndRegionUnmatched(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	if _, err := th.EndRegion(); err == nil {
		t.Error("unmatched EndRegion did not error")
	}
}

func TestNestedRegions(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	th.StartRegion()
	th.RecordRegionAlloc(vmheap.Ref(2))
	th.StartRegion()
	th.RecordRegionAlloc(vmheap.Ref(4))
	inner, err := th.EndRegion()
	if err != nil {
		t.Fatal(err)
	}
	if len(inner) != 1 || inner[0] != 4 {
		t.Errorf("inner queue = %v, want [4]", inner)
	}
	outer, err := th.EndRegion()
	if err != nil {
		t.Fatal(err)
	}
	if len(outer) != 1 || outer[0] != 2 {
		t.Errorf("outer queue = %v, want [2]", outer)
	}
}

func TestPurgeRegionQueues(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	th.StartRegion()
	th.RecordRegionAlloc(vmheap.Ref(2))
	th.RecordRegionAlloc(vmheap.Ref(4))
	th.RecordRegionAlloc(vmheap.Ref(6))
	th.PurgeRegionQueues(func(r vmheap.Ref) bool { return r != 4 })
	q, _ := th.EndRegion()
	if len(q) != 2 || q[0] != 2 || q[1] != 6 {
		t.Errorf("purged queue = %v, want [2 6]", q)
	}
}

func TestSetEachRootSpansThreads(t *testing.T) {
	set := NewSet()
	a := set.New("a")
	b := set.New("b")
	a.PushFrame(1).SetLocal(0, vmheap.Ref(2))
	b.PushFrame(1).SetLocal(0, vmheap.Ref(4))
	n := 0
	set.EachRoot(func(*vmheap.Ref) { n++ })
	if n != 2 {
		t.Errorf("set roots = %d, want 2", n)
	}
	if len(set.All()) != 2 {
		t.Errorf("All = %d threads", len(set.All()))
	}
	if a.ID() == b.ID() {
		t.Error("thread IDs not unique")
	}
	if a.Name() != "a" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestAllocCounter(t *testing.T) {
	set := NewSet()
	th := set.New("main")
	th.CountAlloc()
	th.CountAlloc()
	if th.Allocs() != 2 {
		t.Errorf("Allocs = %d", th.Allocs())
	}
}
