// Package threads implements the simulated mutator threads of the gcassert
// runtime. A Thread owns a stack of frames whose local variable slots are
// GC roots, plus the per-thread region state used by the paper's
// start-region / assert-alldead assertions: a boolean "in region" flag and a
// queue of objects allocated while the region is active.
//
// Threads here are a root-set abstraction, not a scheduling one: real Go
// goroutines may drive different Threads concurrently, with the runtime
// serializing heap access (the collector is stop-the-world).
package threads

import (
	"fmt"

	"repro/internal/vmheap"
)

// Frame is one activation record: a fixed set of local variable slots, each
// holding a heap reference or Nil. Locals are the thread's contribution to
// the root set.
type Frame struct {
	locals []vmheap.Ref
}

// Local returns the reference in slot i.
func (f *Frame) Local(i int) vmheap.Ref { return f.locals[i] }

// SetLocal stores a reference in slot i.
func (f *Frame) SetLocal(i int, r vmheap.Ref) { f.locals[i] = r }

// NumLocals returns the slot count of the frame.
func (f *Frame) NumLocals() int { return len(f.locals) }

// region is one active start-region bracket. The paper describes a single
// boolean flag per thread; we support a stack of nested regions as a
// natural generalization (the innermost region receives allocations).
type region struct {
	queue []vmheap.Ref
}

// Thread is one simulated mutator thread.
type Thread struct {
	id     int
	name   string
	frames []*Frame

	regions []*region

	// Stats.
	allocs uint64
}

// ID returns the thread's runtime-assigned identifier.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// PushFrame adds a frame with n local slots and returns it.
func (t *Thread) PushFrame(n int) *Frame {
	f := &Frame{locals: make([]vmheap.Ref, n)}
	t.frames = append(t.frames, f)
	return f
}

// PopFrame removes the most recent frame. It panics if the thread has no
// frames; unbalanced push/pop is a programming error in the mutator.
func (t *Thread) PopFrame() {
	if len(t.frames) == 0 {
		panic(fmt.Sprintf("threads: PopFrame on %s with empty stack", t.name))
	}
	t.frames = t.frames[:len(t.frames)-1]
}

// TopFrame returns the current frame, or nil if the stack is empty.
func (t *Thread) TopFrame() *Frame {
	if len(t.frames) == 0 {
		return nil
	}
	return t.frames[len(t.frames)-1]
}

// Depth returns the number of frames on the stack.
func (t *Thread) Depth() int { return len(t.frames) }

// InRegion reports whether a start-region bracket is active — the paper's
// per-thread boolean flag. The allocator checks this on every allocation.
func (t *Thread) InRegion() bool { return len(t.regions) > 0 }

// StartRegion opens a region bracket: subsequent allocations on this thread
// are queued until the matching AssertAllDead.
func (t *Thread) StartRegion() {
	t.regions = append(t.regions, &region{})
}

// RecordRegionAlloc queues a newly allocated object on the innermost active
// region. The caller must have checked InRegion.
func (t *Thread) RecordRegionAlloc(r vmheap.Ref) {
	reg := t.regions[len(t.regions)-1]
	reg.queue = append(reg.queue, r)
}

// EndRegion closes the innermost region and returns its allocation queue —
// the objects that assert-alldead will mark dead. It returns an error when
// no region is active (an unmatched assert-alldead).
func (t *Thread) EndRegion() ([]vmheap.Ref, error) {
	if len(t.regions) == 0 {
		return nil, fmt.Errorf("threads: assert-alldead on %s without start-region", t.name)
	}
	reg := t.regions[len(t.regions)-1]
	t.regions = t.regions[:len(t.regions)-1]
	return reg.queue, nil
}

// PurgeRegionQueues removes entries from every active region queue for
// which keep returns false. The collector calls this after a sweep so that
// queues never hold references to reclaimed (and possibly reused) memory.
func (t *Thread) PurgeRegionQueues(keep func(vmheap.Ref) bool) {
	for _, reg := range t.regions {
		kept := reg.queue[:0]
		for _, r := range reg.queue {
			if keep(r) {
				kept = append(kept, r)
			}
		}
		reg.queue = kept
	}
}

// EachRoot invokes fn with the address of every local slot in every frame.
// Passing slot addresses (not values) lets the collector both read roots
// and write them — the "force the assertion to be true" action nulls root
// references to dead-asserted objects.
func (t *Thread) EachRoot(fn func(slot *vmheap.Ref)) {
	for _, f := range t.frames {
		for i := range f.locals {
			if f.locals[i] != vmheap.Nil {
				fn(&f.locals[i])
			}
		}
	}
}

// CountAlloc bumps the thread's allocation counter.
func (t *Thread) CountAlloc() { t.allocs++ }

// AddAllocs folds a batch of n allocations into the thread's counter (the
// allocation-buffer fast path counts per buffer and flushes at
// retirement).
func (t *Thread) AddAllocs(n uint64) { t.allocs += n }

// Allocs returns the number of allocations performed by this thread.
func (t *Thread) Allocs() uint64 { return t.allocs }

// Set tracks every live thread in a runtime.
type Set struct {
	threads []*Thread
}

// NewSet returns an empty thread set.
func NewSet() *Set { return &Set{} }

// New creates a named thread and adds it to the set.
func (s *Set) New(name string) *Thread {
	t := &Thread{id: len(s.threads), name: name}
	s.threads = append(s.threads, t)
	return t
}

// All returns the threads in creation order. The returned slice must not be
// modified.
func (s *Set) All() []*Thread { return s.threads }

// EachRoot invokes fn for every root slot of every thread.
func (s *Set) EachRoot(fn func(slot *vmheap.Ref)) {
	for _, t := range s.threads {
		t.EachRoot(fn)
	}
}
