# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench sweepbench allocbench telemetrybench pausebench zonebench tracebench parzonebench assertbench slobench difftest fuzz figures casestudies verify

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench . -benchmem ./...

# Sweep-mode microbenchmarks: eager vs parallel vs lazy sweep, and the
# allocator with and without demand sweeping (see results/lazy_sweep.txt).
sweepbench:
	go test -run '^$$' -bench 'BenchmarkSweep|BenchmarkAllocEager|BenchmarkAllocLazy' -benchmem ./internal/vmheap

# Allocation fast-path microbenchmarks: the direct free-list allocator vs
# bump-pointer buffers across object sizes and buffer sizes, plus the
# payload-zeroing idiom comparison (see results/alloc_fastpath.txt).
allocbench:
	go test -run '^$$' -bench 'BenchmarkAllocDirect|BenchmarkAllocBuffered|BenchmarkZeroing' -benchmem ./internal/vmheap

# Telemetry overhead: pseudojbb with telemetry off, ring-only, and
# streaming NDJSON to a discarded sink (see results/telemetry.txt).
telemetrybench:
	go test -run '^$$' -bench BenchmarkTelemetry -benchmem .

# Concurrent pacing report: the stop-the-world collector vs the background
# pacer at several trigger/slack settings, comparing mutator-visible latency
# tails and throughput (see results/concurrent_pacing.txt).
pausebench:
	go run ./cmd/gcbench -fig pause -concurrent | tee results/concurrent_pacing.txt

# Zone pause-isolation report: per-allocation mutator latency and the
# telemetry pause histogram while a driver collects continuously — the whole
# heap in the baseline, one zone at a time in the sharded variants. Shows
# collecting one zone does not pause allocation in the others (see
# results/zones.txt).
zonebench:
	go run ./cmd/gcbench -fig zones | tee results/zones.txt

# Trace-throughput baseline: marked words/sec on the pseudojbb shape under
# serial, parallel, and concurrent-zone tracing — the ROADMAP item 4
# compaction work measures against this (see results/trace_throughput.txt).
tracebench:
	go test -run '^$$' -bench BenchmarkTraceThroughput -benchmem ./internal/harness | tee results/trace_throughput.txt

# Parallel zone rotation: aggregate GC throughput (marked words/sec) and
# mutator throughput under the serialized rotation vs concurrent rotations
# with 1, 2, and 4 zones in flight (see results/parallel_zones.txt).
parzonebench:
	go run ./cmd/gcbench -fig zones -zonegcworkers 4 | tee results/parallel_zones.txt

# Assertion-overhead report: per-assertion-kind collection throughput with
# the engine unarmed vs armed (dead, region, unshared, owned), plus the
# staleness profiler's Touch cost and Advance pause — each under the dense
# epoch-stamped side tables and the map[Ref] reference implementation
# (see results/assert_overhead.txt).
assertbench:
	go test -run '^$$' -bench BenchmarkAssertTrace -benchtime 3000x -benchmem ./internal/harness | tee results/assert_overhead.txt
	go test -run '^$$' -bench BenchmarkStaleness -benchmem ./internal/harness | tee -a results/assert_overhead.txt

# Serving SLO sweep: the minidb server under open-loop load over loopback
# HTTP, swept across request rates and collector configs, with per-cell
# p50/p95/p99 request latency from the offline summary of each cell's
# NDJSON stream — the same file `gcmon -follow` reads live. The heap is
# sized so collections actually fire under the load and land in the tails.
# The gate requires aggregate p99 at the -slo-rps rate within the -slo-p99
# budget (see results/serving_slo.txt). The zoned config needs a heap at
# least 4x this (the database initializes into one zone):
#   go run ./cmd/minidbd -selfdrive -gc zones -heapwords 262144 ...
slobench:
	go run ./cmd/minidbd -selfdrive -gc stw,concurrent -rates 500,1000 \
		-duration 4s -heapwords 65536 -entries 1000 \
		-slo-rps 500 -slo-p99 50ms | tee results/serving_slo.txt

# Differential tests: serial vs parallel collections on identical scripts,
# stop-the-world vs incremental cycles (plus the shadow-model oracle), eager
# vs parallel vs lazy sweep modes under both collectors, direct vs buffered
# allocation across every collector mode, telemetry on vs off (recording
# must be pure observation — byte-identical heaps), and stop-the-world vs
# background-pacer concurrent collection (same final marked set and
# assertion verdicts).
difftest:
	go test -race -run 'TestDifferential|TestIncrementalDifferential|TestOracle' -v ./internal/trace
	go test -race -run 'TestSweepModesDifferential|TestLazySweep|TestAllocBuffer|TestTelemetry' -v ./internal/core
	go test -race -run 'TestConcurrentDifferential' -v ./internal/core
	go test -race -run 'TestParallelZoneDifferential' -v ./internal/core
	go test -race -run 'TestSideTabDifferential' -v ./internal/core
	go test -race -run 'TestStalenessSideTabDifferential' -v ./internal/staleness

# Short coverage-guided fuzz runs: the serial/parallel equivalence, the
# stop-the-world/incremental equivalence, the eager/parallel/lazy sweep
# equivalence, and the direct/buffered allocation equivalence (go test takes
# one -fuzz pattern per invocation, so the targets run sequentially).
fuzz:
	go test -run '^$$' -fuzz FuzzParallelTrace -fuzztime 30s ./internal/core
	go test -run '^$$' -fuzz FuzzIncrementalBarrier -fuzztime 30s ./internal/core
	go test -run '^$$' -fuzz FuzzLazySweep -fuzztime 30s ./internal/core
	go test -run '^$$' -fuzz FuzzAllocBuffer -fuzztime 30s ./internal/core
	go test -run '^$$' -fuzz FuzzConcurrentPacer -fuzztime 30s ./internal/core
	go test -run '^$$' -fuzz FuzzZoneRemset -fuzztime 30s ./internal/core
	go test -run '^$$' -fuzz FuzzSideTab -fuzztime 30s ./internal/sidetab

# Regenerate the paper's figures (text tables on stdout, CSV alongside).
figures:
	go run ./cmd/gcbench -fig all -csv figures.csv

# Run the four qualitative case studies of Section 3.2.
casestudies:
	go run ./cmd/leakcheck jbb
	go run ./cmd/leakcheck db
	go run ./cmd/leakcheck lusearch
	go run ./cmd/leakcheck swapleak

verify: build test race
