package main

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestValidateAccepts(t *testing.T) {
	cases := []options{
		{iters: 1},
		{iters: 3, names: workloads.Names()},
		{iters: 10, names: workloads.Names()[:1]},
	}
	for i, o := range cases {
		if err := validate(o); err != nil {
			t.Errorf("case %d: validate(%+v) = %v, want nil", i, o, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		o    options
		want string
	}{
		// -iters 0 used to reach an integer divide-by-zero computing the
		// alloc/iter column; negative values are equally meaningless.
		{options{iters: 0}, "-iters"},
		{options{iters: -3}, "-iters"},
		// An unknown name used to abort midway through the run, after
		// earlier workloads had already printed their rows.
		{options{iters: 3, names: []string{"no-such-workload"}}, "unknown workload"},
		{options{iters: 3, names: append(workloads.Names(), "nope")}, "unknown workload"},
	}
	for i, c := range cases {
		err := validate(c.o)
		if err == nil {
			t.Errorf("case %d: validate(%+v) = nil, want error containing %q", i, c.o, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: validate(%+v) = %q, want it to contain %q", i, c.o, err, c.want)
		}
	}
}
