// Command calibrate measures each benchmark's live-heap size and
// allocation rate, for sizing the fixed heaps the harness runs with (the
// paper's methodology: two times the minimum live size).
//
//	calibrate            report every suite workload
//	calibrate bloat pmd  report specific workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/workloads"
)

// options collects the flag and argument values so validation is testable
// apart from flag parsing and execution.
type options struct {
	iters int
	names []string
}

// validate rejects invalid invocations up front — exit code 2 with a
// message before any measurement runs. -iters 0 would divide by zero in
// the alloc/iter column, and an unknown workload name used to abort the
// run midway with earlier rows already printed.
func validate(o options) error {
	if o.iters < 1 {
		return fmt.Errorf("-iters %d: need at least one measured iteration", o.iters)
	}
	for _, name := range o.names {
		if workloads.ByName(name) == nil {
			return fmt.Errorf("unknown workload %q (want one of %v)", name, workloads.Names())
		}
	}
	return nil
}

func main() {
	iters := flag.Int("iters", 3, "iterations to run before measuring")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = workloads.Names()
	}
	if err := validate(options{iters: *iters, names: names}); err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("%-12s %12s %14s %12s %12s\n",
		"workload", "live(words)", "alloc/iter", "declared", "declared/live")
	for _, name := range names {
		w := workloads.ByName(name)()
		rt := core.New(core.Config{HeapWords: 1 << 22, Mode: core.Base})
		th := rt.MainThread()
		w.Setup(rt, th)
		if err := rt.GC(); err != nil {
			panic(err)
		}
		setupLive := rt.Stats().Heap.LiveWords
		before := rt.Stats().Heap.TotalWords
		for i := 0; i < *iters; i++ {
			w.Iterate(rt, th)
		}
		if err := rt.GC(); err != nil {
			panic(err)
		}
		st := rt.Stats()
		live := st.Heap.LiveWords
		if setupLive > live {
			live = setupLive
		}
		perIter := (st.Heap.TotalWords - before) / uint64(*iters)
		ratio := float64(w.HeapWords()) / float64(max(live, 1))
		fmt.Printf("%-12s %12d %14d %12d %12.2f\n",
			name, live, perIter, w.HeapWords(), ratio)
	}
}
