// Command calibrate measures each benchmark's live-heap size and
// allocation rate, for sizing the fixed heaps the harness runs with (the
// paper's methodology: two times the minimum live size).
//
//	calibrate            report every suite workload
//	calibrate bloat pmd  report specific workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	iters := flag.Int("iters", 3, "iterations to run before measuring")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = workloads.Names()
	}

	fmt.Printf("%-12s %12s %14s %12s %12s\n",
		"workload", "live(words)", "alloc/iter", "declared", "declared/live")
	for _, name := range names {
		f := workloads.ByName(name)
		if f == nil {
			fmt.Fprintf(os.Stderr, "calibrate: unknown workload %q\n", name)
			os.Exit(2)
		}
		w := f()
		rt := core.New(core.Config{HeapWords: 1 << 22, Mode: core.Base})
		th := rt.MainThread()
		w.Setup(rt, th)
		if err := rt.GC(); err != nil {
			panic(err)
		}
		setupLive := rt.Stats().Heap.LiveWords
		before := rt.Stats().Heap.TotalWords
		for i := 0; i < *iters; i++ {
			w.Iterate(rt, th)
		}
		if err := rt.GC(); err != nil {
			panic(err)
		}
		st := rt.Stats()
		live := st.Heap.LiveWords
		if setupLive > live {
			live = setupLive
		}
		perIter := (st.Heap.TotalWords - before) / uint64(*iters)
		ratio := float64(w.HeapWords()) / float64(max(live, 1))
		fmt.Printf("%-12s %12d %14d %12d %12.2f\n",
			name, live, perIter, w.HeapWords(), ratio)
	}
}
