// Command leakcheck runs the paper's qualitative case studies (Section
// 3.2) with GC assertions enabled and prints the violation reports,
// including the full heap paths of Figure 1:
//
//	leakcheck jbb        SPEC JBB2000: the lastOrder leak, the orderTable
//	                     leak, and the oldCompany drag
//	leakcheck db         _209_db with ownership assertions and an injected
//	                     cache leak
//	leakcheck lusearch   32 live IndexSearchers where 1 is recommended
//	leakcheck swapleak   the hidden inner-class reference
//
// Pass -fixed to run the repaired variant of each program (no violations
// expected).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/heapdot"
	"repro/internal/jbb"
	"repro/internal/lusearch"
	"repro/internal/minidb"
	"repro/internal/report"
	"repro/internal/swapleak"
	"repro/internal/vmheap"
)

var (
	fixed     = flag.Bool("fixed", false, "run the repaired variant")
	heapWords = flag.Int("heap", 1<<20, "heap size in 64-bit words")
	dotFile   = flag.String("dot", "", "write a Graphviz graph of the first violation to this file")
)

// options collects the flag and argument values so validation is testable
// apart from flag parsing and execution.
type options struct {
	heapWords int
	args      []string
}

// validate rejects invalid invocations up front — exit code 2 with a
// message, never a panic mid-run (an undersized -heap would otherwise
// panic inside core.New after the banner printed).
func validate(o options) error {
	if len(o.args) != 1 {
		return fmt.Errorf("usage: leakcheck [-fixed] [-heap words] jbb|db|lusearch|swapleak")
	}
	switch o.args[0] {
	case "jbb", "db", "lusearch", "swapleak":
	default:
		return fmt.Errorf("unknown case study %q (want jbb, db, lusearch, or swapleak)", o.args[0])
	}
	if o.heapWords < vmheap.MinHeapWords {
		return fmt.Errorf("-heap %d: below the minimum heap of %d words", o.heapWords, vmheap.MinHeapWords)
	}
	return nil
}

func main() {
	flag.Parse()
	opts := options{heapWords: *heapWords, args: flag.Args()}
	if err := validate(opts); err != nil {
		fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
		os.Exit(2)
	}

	switch flag.Arg(0) {
	case "jbb":
		runJBB()
	case "db":
		runDB()
	case "lusearch":
		runLusearch()
	case "swapleak":
		runSwapleak()
	}
}

// newRuntime builds a fresh Infrastructure runtime logging violations to
// stdout.
func newRuntime() *core.Runtime {
	return core.New(core.Config{
		HeapWords: *heapWords,
		Mode:      core.Infrastructure,
		Handler:   &report.Logger{W: os.Stdout},
	})
}

// summary prints the assertion counters of one scenario and honours -dot.
func summary(rt *core.Runtime) {
	if *dotFile != "" {
		if vs := rt.Violations(); len(vs) > 0 {
			f, err := os.Create(*dotFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
				os.Exit(1)
			}
			if err := heapdot.WriteViolation(f, rt, vs[0], heapdot.Options{}); err == nil {
				fmt.Printf("wrote %s (first violation's heap neighbourhood)\n", *dotFile)
			}
			f.Close()
			*dotFile = "" // once per invocation
		}
	}
	st := rt.Stats()
	fmt.Printf("collections: %d   violations: %d\n", st.GC.Collections, st.Asserts.Violations)
	fmt.Printf("assert-dead calls: %d   assert-ownedby calls: %d   ownees checked: %d\n",
		st.Asserts.DeadAsserts, st.Asserts.OwnedByAsserts, st.GC.Trace.OwneesChecked)
	if st.Asserts.Violations == 0 {
		fmt.Println("no assertion violations.")
	}
	fmt.Println()
}

func banner(s string) { fmt.Printf("=== %s ===\n", s) }

// runJBB reproduces Section 3.2.1 as three scenarios, mirroring the
// paper's narrative.
func runJBB() {
	banner("scenario 1: assert-dead on Order.destroy (Figure 1 paths)")
	rt := newRuntime()
	b := jbb.New(rt, jbb.Config{
		LeakOrderTable:      !*fixed,
		ClearLastOrder:      *fixed,
		AssertDeadOnDestroy: true,
	})
	b.RunTransactions(300)
	check(rt.GC())
	summary(rt)

	banner("scenario 2: assert-ownedby(orderTable, order) at District.addOrder")
	rt = newRuntime()
	b = jbb.New(rt, jbb.Config{
		ClearLastOrder:     *fixed,
		AssertOwnedByOnAdd: true,
	})
	b.RunTransactions(300)
	check(rt.GC())
	summary(rt)

	banner("scenario 3: assert-instances(Company, 1) across the main loop")
	rt = newRuntime()
	b = jbb.New(rt, jbb.Config{
		ClearLastOrder:         true,
		ClearOldCompany:        *fixed,
		AssertCompanySingleton: true,
	})
	b.RunTransactions(100)
	b.ReplaceCompany()
	check(rt.GC())
	summary(rt)
}

func runDB() {
	banner("_209_db: Entries owned by Database, assert-dead at remove sites")
	rt := newRuntime()
	d := minidb.New(rt, minidb.Config{
		Entries:            5000,
		AssertOwnership:    true,
		AssertDeadOnRemove: true,
		LeakCache:          !*fixed,
	})
	d.RunOps(300)
	check(rt.GC())
	summary(rt)
}

func runLusearch() {
	banner("lusearch: assert-instances(IndexSearcher, 1)")
	rt := newRuntime()
	e := lusearch.New(rt, lusearch.Config{
		SharedSearcher:       *fixed,
		AssertSingleSearcher: true,
	})
	e.Run(200, func() { check(rt.GC()) })
	summary(rt)
}

func runSwapleak() {
	banner("SwapLeak: assert-dead after swap")
	rt := newRuntime()
	p := swapleak.New(rt, swapleak.Config{
		Objects:             16,
		StaticRep:           *fixed,
		AssertDeadAfterSwap: true,
	})
	p.RunSwapLoop()
	check(rt.GC())
	summary(rt)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
		os.Exit(1)
	}
}
