package main

import (
	"strings"
	"testing"

	"repro/internal/vmheap"
)

func defaults() options {
	return options{heapWords: 1 << 20, args: []string{"jbb"}}
}

func TestValidateAccepts(t *testing.T) {
	cases := []func(*options){
		func(o *options) {},
		func(o *options) { o.args = []string{"db"} },
		func(o *options) { o.args = []string{"lusearch"} },
		func(o *options) { o.args = []string{"swapleak"} },
		func(o *options) { o.heapWords = vmheap.MinHeapWords },
	}
	for i, mut := range cases {
		o := defaults()
		mut(&o)
		if err := validate(o); err != nil {
			t.Errorf("case %d: validate(%+v) = %v, want nil", i, o, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		mut  func(*options)
		want string
	}{
		{func(o *options) { o.args = nil }, "usage:"},
		{func(o *options) { o.args = []string{"jbb", "db"} }, "usage:"},
		{func(o *options) { o.args = []string{"pmd"} }, "unknown case study"},
		// An undersized heap used to panic inside core.New after the
		// scenario banner had already printed.
		{func(o *options) { o.heapWords = 0 }, "-heap"},
		{func(o *options) { o.heapWords = vmheap.MinHeapWords - 1 }, "below the minimum"},
		{func(o *options) { o.heapWords = -1 }, "-heap"},
	}
	for i, c := range cases {
		o := defaults()
		c.mut(&o)
		err := validate(o)
		if err == nil {
			t.Errorf("case %d: validate(%+v) = nil, want error containing %q", i, o, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: validate(%+v) = %q, want it to contain %q", i, o, err, c.want)
		}
	}
}
