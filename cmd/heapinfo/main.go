// Command heapinfo runs a case study to a steady state and prints a
// class histogram of the live heap — the kind of heap-census view the
// paper's related work (Cork, LeakBot) builds its diagnoses on, here used
// to corroborate what the assertions report.
//
//	heapinfo jbb            histogram of the leaky SPEC JBB2000 heap
//	heapinfo -fixed jbb     histogram with the leaks repaired
//	heapinfo db | swapleak
//	heapinfo -save h.bin jbb   also write a heap snapshot for offline use
//	heapinfo -load h.bin       histogram a previously saved snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/heapdump"
	"repro/internal/jbb"
	"repro/internal/minidb"
	"repro/internal/swapleak"
)

// options collects the flag and argument values so validation is testable
// apart from flag parsing and execution.
type options struct {
	fixed bool
	save  string
	load  string
	args  []string
}

// validate rejects invalid invocations up front — exit code 2 with a
// message, never a panic mid-run or a silently ignored flag.
func validate(o options) error {
	if o.load != "" {
		if len(o.args) != 0 {
			return fmt.Errorf("-load %s replaces running a case study; drop the %q argument", o.load, o.args[0])
		}
		if o.fixed {
			return fmt.Errorf("-fixed selects the variant to run; it does not apply to a loaded snapshot")
		}
		if o.save != "" {
			return fmt.Errorf("-save records a fresh run; it does not apply to a loaded snapshot")
		}
		return nil
	}
	if len(o.args) != 1 {
		return fmt.Errorf("usage: heapinfo [-fixed] [-save file] jbb|db|swapleak, or heapinfo -load file")
	}
	switch o.args[0] {
	case "jbb", "db", "swapleak":
	default:
		return fmt.Errorf("unknown case study %q (want jbb, db, or swapleak)", o.args[0])
	}
	return nil
}

func main() {
	fixed := flag.Bool("fixed", false, "run the repaired variant")
	save := flag.String("save", "", "write a heap snapshot to this file after the run")
	load := flag.String("load", "", "histogram a saved snapshot instead of running a case study")
	flag.Parse()

	opts := options{fixed: *fixed, save: *save, load: *load, args: flag.Args()}
	if err := validate(opts); err != nil {
		fmt.Fprintf(os.Stderr, "heapinfo: %v\n", err)
		os.Exit(2)
	}

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapinfo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		rt, err := heapdump.Read(f, 1<<21)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapinfo: %v\n", err)
			os.Exit(1)
		}
		histogram(rt)
		return
	}

	rt := core.New(core.Config{HeapWords: 1 << 20, Mode: core.Infrastructure})

	switch flag.Arg(0) {
	case "jbb":
		b := jbb.New(rt, jbb.Config{
			LeakOrderTable: !*fixed,
			ClearLastOrder: *fixed,
		})
		b.RunTransactions(2000)
	case "db":
		d := minidb.New(rt, minidb.Config{Entries: 5000, LeakCache: !*fixed})
		d.RunOps(400)
	case "swapleak":
		p := swapleak.New(rt, swapleak.Config{Objects: 256, StaticRep: *fixed})
		for i := 0; i < 4; i++ {
			p.RunSwapLoop()
		}
	}

	if err := rt.GC(); err != nil {
		fmt.Fprintf(os.Stderr, "heapinfo: %v\n", err)
		os.Exit(1)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapinfo: %v\n", err)
			os.Exit(1)
		}
		if err := heapdump.Write(f, rt); err != nil {
			fmt.Fprintf(os.Stderr, "heapinfo: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote snapshot %s\n", *save)
	}

	histogram(rt)
}

func histogram(rt *core.Runtime) {
	type row struct {
		class string
		count int
		words uint64
	}
	byClass := map[string]*row{}
	rt.EachObject(func(class string, sizeWords uint32) {
		r := byClass[class]
		if r == nil {
			r = &row{class: class}
			byClass[class] = r
		}
		r.count++
		r.words += uint64(sizeWords)
	})

	rows := make([]*row, 0, len(byClass))
	for _, r := range byClass {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].words > rows[j].words })

	st := rt.Stats()
	fmt.Printf("live heap after GC: %d objects, %d words (%.1f%% of %d)\n\n",
		st.Heap.LiveObjects, st.Heap.LiveWords,
		100*float64(st.Heap.LiveWords)/float64(st.Heap.CapacityWords),
		st.Heap.CapacityWords)
	fmt.Printf("%-16s %10s %12s\n", "class", "objects", "words")
	for _, r := range rows {
		fmt.Printf("%-16s %10d %12d\n", r.class, r.count, r.words)
	}
}
