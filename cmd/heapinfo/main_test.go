package main

import (
	"strings"
	"testing"
)

func TestValidateAccepts(t *testing.T) {
	cases := []options{
		{args: []string{"jbb"}},
		{args: []string{"db"}, fixed: true},
		{args: []string{"swapleak"}, save: "snap.bin"},
		{args: []string{"jbb"}, fixed: true, save: "snap.bin"},
		{load: "snap.bin"},
	}
	for i, o := range cases {
		if err := validate(o); err != nil {
			t.Errorf("case %d: validate(%+v) = %v, want nil", i, o, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		o    options
		want string
	}{
		{options{}, "usage:"},
		{options{args: []string{"jbb", "db"}}, "usage:"},
		{options{args: []string{"pmd"}}, "unknown case study"},
		// -load replaces the run entirely; combining it with run-shaped
		// flags or a study name used to silently ignore them.
		{options{load: "s.bin", args: []string{"jbb"}}, "drop the"},
		{options{load: "s.bin", fixed: true}, "-fixed"},
		{options{load: "s.bin", save: "t.bin"}, "-save"},
	}
	for i, c := range cases {
		err := validate(c.o)
		if err == nil {
			t.Errorf("case %d: validate(%+v) = nil, want error containing %q", i, c.o, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: validate(%+v) = %q, want it to contain %q", i, c.o, err, c.want)
		}
	}
}
