// Command gcmon summarizes a telemetry NDJSON event stream — the file
// written by gcbench -events, or any sink attached through
// core.Config.Telemetry — as a phase/pause table with exact offline
// quantiles:
//
//	gcmon events.ndjson              one-shot summary of the whole file
//	gcmon -follow events.ndjson      re-read and re-print as the file grows
//	gcmon -follow -interval 500ms events.ndjson
//
// In -follow mode gcmon polls the file and reprints the cumulative summary
// whenever new events arrive; a truncated file (a restarted run) resets the
// tail. Interrupt to stop. The counts printed are exactly the counts in the
// stream: one line per event, no sampling.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// options collects the flag and argument values so validation is testable
// apart from flag parsing and execution.
type options struct {
	follow   bool
	interval time.Duration
	args     []string
}

// validate rejects invalid invocations up front — exit code 2 with a
// message, per the tooling contract.
func validate(o options) error {
	if len(o.args) != 1 {
		return fmt.Errorf("usage: gcmon [-follow] [-interval d] events.ndjson")
	}
	if o.interval <= 0 {
		return fmt.Errorf("-interval %v: must be positive", o.interval)
	}
	return nil
}

func main() {
	follow := flag.Bool("follow", false, "keep polling the file and reprint the summary as events arrive")
	interval := flag.Duration("interval", time.Second, "poll interval for -follow")
	flag.Parse()

	opts := options{follow: *follow, interval: *interval, args: flag.Args()}
	if err := validate(opts); err != nil {
		fmt.Fprintf(os.Stderr, "gcmon: %v\n", err)
		os.Exit(2)
	}

	if !*follow {
		if err := summarizeOnce(os.Stdout, flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "gcmon: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := followFile(os.Stdout, flag.Arg(0), *interval); err != nil {
		fmt.Fprintf(os.Stderr, "gcmon: %v\n", err)
		os.Exit(1)
	}
}

// summarizeOnce reads the whole event file and prints one summary table.
func summarizeOnce(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadEvents(f)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, telemetry.Summarize(events).Format())
	return err
}

// tailState incrementally consumes an NDJSON stream across polls: complete
// lines are decoded as they appear; a partial final line is held back until
// its remainder is written.
type tailState struct {
	events  []telemetry.FileEvent
	pending []byte
	offset  int64
}

// consume decodes the complete lines in buf (possibly prefixed by a held
// partial line) and returns how many new events appeared.
func (t *tailState) consume(buf []byte) (int, error) {
	data := append(t.pending, buf...)
	added := 0
	for {
		nl := strings.IndexByte(string(data), '\n')
		if nl < 0 {
			break
		}
		line := strings.TrimSpace(string(data[:nl]))
		data = data[nl+1:]
		if line == "" {
			continue
		}
		evs, err := telemetry.ReadEvents(strings.NewReader(line))
		if err != nil {
			return added, err
		}
		t.events = append(t.events, evs...)
		added += len(evs)
	}
	t.pending = data
	return added, nil
}

// followFile polls path forever, reprinting the cumulative summary whenever
// new events arrive. Truncation (a restarted producer) resets the tail.
func followFile(w io.Writer, path string, interval time.Duration) error {
	var st tailState
	first := true
	for {
		fi, err := os.Stat(path)
		if err == nil && fi.Size() < st.offset {
			// Truncated: the producer restarted. Start over.
			st = tailState{}
			first = true
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		if _, err := f.Seek(st.offset, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		buf, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			return err
		}
		st.offset += int64(len(buf))
		added, err := st.consume(buf)
		if err != nil {
			return err
		}
		if added > 0 || first {
			fmt.Fprintf(w, "-- %s (%d events) --\n", time.Now().Format(time.TimeOnly), len(st.events))
			io.WriteString(w, telemetry.Summarize(st.events).Format())
			first = false
		}
		time.Sleep(interval)
	}
}
