// Command gcmon summarizes a telemetry NDJSON event stream — the file
// written by gcbench -events, or any sink attached through
// core.Config.Telemetry — as a phase/pause table with exact offline
// quantiles:
//
//	gcmon events.ndjson              one-shot summary of the whole file
//	gcmon -follow events.ndjson      re-read and re-print as the file grows
//	gcmon -follow -interval 500ms events.ndjson
//
// In -follow mode gcmon polls the file and reprints the cumulative summary
// whenever new events arrive; a truncated or rotated file (a restarted run)
// resets the tail, a transiently missing file is waited out, and a
// malformed line is skipped (and counted in the header) rather than killing
// the tail. Interrupt to stop. The counts printed are exactly the counts in
// the stream: one line per event, no sampling.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/telemetry"
)

// options collects the flag and argument values so validation is testable
// apart from flag parsing and execution.
type options struct {
	follow   bool
	interval time.Duration
	args     []string
}

// validate rejects invalid invocations up front — exit code 2 with a
// message, per the tooling contract.
func validate(o options) error {
	if len(o.args) != 1 {
		return fmt.Errorf("usage: gcmon [-follow] [-interval d] events.ndjson")
	}
	if o.interval <= 0 {
		return fmt.Errorf("-interval %v: must be positive", o.interval)
	}
	return nil
}

func main() {
	follow := flag.Bool("follow", false, "keep polling the file and reprint the summary as events arrive")
	interval := flag.Duration("interval", time.Second, "poll interval for -follow")
	flag.Parse()

	opts := options{follow: *follow, interval: *interval, args: flag.Args()}
	if err := validate(opts); err != nil {
		fmt.Fprintf(os.Stderr, "gcmon: %v\n", err)
		os.Exit(2)
	}

	if !*follow {
		if err := summarizeOnce(os.Stdout, flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "gcmon: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := followFile(os.Stdout, flag.Arg(0), *interval); err != nil {
		fmt.Fprintf(os.Stderr, "gcmon: %v\n", err)
		os.Exit(1)
	}
}

// summarizeOnce reads the whole event file and prints one summary table.
func summarizeOnce(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadEvents(f)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, telemetry.Summarize(events).Format())
	return err
}

// tailState incrementally consumes an NDJSON stream across polls: complete
// lines are decoded as they appear; a partial final line is held back until
// its remainder is written. A malformed line does not kill the tail — the
// decoder resyncs at the next newline and counts the line as skipped (the
// header reports the tally), because in follow mode one torn write from a
// dying producer must not take the ops view down with it.
type tailState struct {
	events  []telemetry.FileEvent
	pending []byte
	offset  int64
	skipped int // malformed lines dropped since the last reset
}

// consume decodes the complete lines in buf (possibly prefixed by a held
// partial line) and returns how many new events appeared. Scanning is a
// bytes.IndexByte walk over one buffer — no per-probe string conversion,
// so a large backlog costs one pass, not a quadratic re-scan.
func (t *tailState) consume(buf []byte) int {
	t.pending = append(t.pending, buf...)
	data := t.pending
	added := 0
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		line := bytes.TrimSpace(data[:nl])
		data = data[nl+1:]
		if len(line) == 0 {
			continue
		}
		evs, err := telemetry.ReadEvents(bytes.NewReader(line))
		if err != nil {
			t.skipped++
			continue
		}
		t.events = append(t.events, evs...)
		added += len(evs)
	}
	// Keep only the partial tail; copy down so the buffer does not grow
	// without bound across polls.
	t.pending = append(t.pending[:0], data...)
	return added
}

// poll reads whatever the file has grown by since the last poll into the
// tail. reset reports that the file shrank below the consumed offset —
// truncation, or rotation to a fresh (smaller) file — in which case the
// tail restarted from the beginning of the new content. An error is a
// transient file-system condition (the file mid-rotation, a producer not
// yet restarted); the caller retries on the next interval.
func (t *tailState) poll(path string) (added int, reset bool, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, false, err
	}
	if fi.Size() < t.offset {
		// Truncated or rotated: the producer restarted. Start over.
		*t = tailState{}
		reset = true
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, reset, err
	}
	defer f.Close()
	if _, err := f.Seek(t.offset, io.SeekStart); err != nil {
		return 0, reset, err
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return 0, reset, err
	}
	t.offset += int64(len(buf))
	return t.consume(buf), reset, nil
}

// followFile polls path forever, reprinting the cumulative summary whenever
// new events arrive. Truncation and rotation (a restarted producer) reset
// the tail; a transient stat/open failure — exactly what a log rotation
// looks like mid-swap — is waited out, not fatal.
func followFile(w io.Writer, path string, interval time.Duration) error {
	var st tailState
	printed := false
	waiting := ""
	for {
		added, reset, err := st.poll(path)
		if err != nil {
			if msg := err.Error(); msg != waiting {
				fmt.Fprintf(w, "-- waiting for %s: %v --\n", path, err)
				waiting = msg
			}
			time.Sleep(interval)
			continue
		}
		waiting = ""
		if reset {
			printed = false
		}
		if added > 0 || !printed {
			fmt.Fprintf(w, "-- %s (%d events%s) --\n",
				time.Now().Format(time.TimeOnly), len(st.events), skippedNote(st.skipped))
			io.WriteString(w, telemetry.Summarize(st.events).Format())
			printed = true
		}
		time.Sleep(interval)
	}
}

// skippedNote renders the malformed-line tally for the follow header.
func skippedNote(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(", %d malformed lines skipped", n)
}
