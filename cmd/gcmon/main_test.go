package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

func TestValidateAccepts(t *testing.T) {
	cases := []options{
		{interval: time.Second, args: []string{"ev.ndjson"}},
		{follow: true, interval: 100 * time.Millisecond, args: []string{"ev.ndjson"}},
	}
	for i, o := range cases {
		if err := validate(o); err != nil {
			t.Errorf("case %d: validate(%+v) = %v, want nil", i, o, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		o    options
		want string
	}{
		{options{interval: time.Second}, "usage:"},
		{options{interval: time.Second, args: []string{"a", "b"}}, "usage:"},
		{options{follow: true, interval: 0, args: []string{"ev"}}, "-interval"},
		{options{follow: true, interval: -time.Second, args: []string{"ev"}}, "-interval"},
	}
	for i, c := range cases {
		err := validate(c.o)
		if err == nil {
			t.Errorf("case %d: validate(%+v) = nil, want error containing %q", i, c.o, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: validate(%+v) = %q, want it to contain %q", i, c.o, err, c.want)
		}
	}
}

// TestSummaryReproducesPhaseCounts is the acceptance check: the summary
// gcmon derives from the NDJSON file reports exactly the phase counts,
// cycle count, and violation tallies the live recorder counted.
func TestSummaryReproducesPhaseCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		HeapWords: 1 << 12,
		Mode:      core.Infrastructure,
		Telemetry: &telemetry.Config{Sink: f},
	})
	node := rt.DefineClass("Node")
	th := rt.MainThread()
	g := rt.AddGlobal("leak")
	dead := th.New(node)
	if err := rt.AssertDead(dead); err != nil {
		t.Fatal(err)
	}
	g.Set(dead)
	for i := 0; i < 4; i++ {
		if err := rt.GC(); err != nil {
			t.Fatal(err)
		}
	}
	m := rt.Metrics()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadEvents(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	sum := telemetry.Summarize(events)

	if sum.Cycles != m.Cycles {
		t.Errorf("gcmon cycles %d != recorder cycles %d", sum.Cycles, m.Cycles)
	}
	if sum.Events != m.Events {
		t.Errorf("gcmon events %d != recorder events %d", sum.Events, m.Events)
	}
	if sum.Pause.Count != m.Pause.Count {
		t.Errorf("gcmon pauses %d != recorder pauses %d", sum.Pause.Count, m.Pause.Count)
	}
	byName := map[string]uint64{}
	for _, p := range sum.Phases {
		byName[p.Phase] = p.Count
	}
	for _, p := range m.Phases {
		if p.Count == 0 {
			continue
		}
		if byName[p.Phase] != p.Count {
			t.Errorf("gcmon phase %s count %d != recorder %d", p.Phase, byName[p.Phase], p.Count)
		}
	}
	var fileViolations uint64
	for _, n := range sum.Violations {
		fileViolations += n
	}
	if fileViolations != m.Violations {
		t.Errorf("gcmon violations %d != recorder %d", fileViolations, m.Violations)
	}

	// The one-shot path prints the same table Summarize formats.
	var out strings.Builder
	if err := summarizeOnce(&out, path); err != nil {
		t.Fatal(err)
	}
	if out.String() != sum.Format() {
		t.Error("summarizeOnce output differs from Summarize().Format()")
	}
}

// TestTailStateIncrementalConsume feeds a stream in arbitrary chunk
// boundaries — including mid-line splits — and checks the tail decodes
// exactly the complete lines.
func TestTailStateIncrementalConsume(t *testing.T) {
	lines := `{"seq":1,"ns":10,"ev":"cycle_begin","cycle":1}` + "\n" +
		`{"seq":2,"ns":20,"ev":"phase_end","phase":"mark","cycle":1,"dur_ns":5}` + "\n" +
		`{"seq":3,"ns":30,"ev":"pause","cycle":1,"dur_ns":7}` + "\n"
	for _, chunk := range []int{1, 3, 7, len(lines)} {
		var st tailState
		total := 0
		for off := 0; off < len(lines); off += chunk {
			end := off + chunk
			if end > len(lines) {
				end = len(lines)
			}
			added, err := st.consume([]byte(lines[off:end]))
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
			total += added
		}
		if total != 3 || len(st.events) != 3 {
			t.Errorf("chunk %d: decoded %d events (added %d), want 3", chunk, len(st.events), total)
		}
		if len(st.pending) != 0 {
			t.Errorf("chunk %d: %d bytes stuck in pending", chunk, len(st.pending))
		}
		sum := telemetry.Summarize(st.events)
		if sum.Cycles != 1 || sum.Pause.Count != 1 {
			t.Errorf("chunk %d: bad summary %+v", chunk, sum)
		}
	}
}
