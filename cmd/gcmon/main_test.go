package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

func TestValidateAccepts(t *testing.T) {
	cases := []options{
		{interval: time.Second, args: []string{"ev.ndjson"}},
		{follow: true, interval: 100 * time.Millisecond, args: []string{"ev.ndjson"}},
	}
	for i, o := range cases {
		if err := validate(o); err != nil {
			t.Errorf("case %d: validate(%+v) = %v, want nil", i, o, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		o    options
		want string
	}{
		{options{interval: time.Second}, "usage:"},
		{options{interval: time.Second, args: []string{"a", "b"}}, "usage:"},
		{options{follow: true, interval: 0, args: []string{"ev"}}, "-interval"},
		{options{follow: true, interval: -time.Second, args: []string{"ev"}}, "-interval"},
	}
	for i, c := range cases {
		err := validate(c.o)
		if err == nil {
			t.Errorf("case %d: validate(%+v) = nil, want error containing %q", i, c.o, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: validate(%+v) = %q, want it to contain %q", i, c.o, err, c.want)
		}
	}
}

// TestSummaryReproducesPhaseCounts is the acceptance check: the summary
// gcmon derives from the NDJSON file reports exactly the phase counts,
// cycle count, and violation tallies the live recorder counted.
func TestSummaryReproducesPhaseCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		HeapWords: 1 << 12,
		Mode:      core.Infrastructure,
		Telemetry: &telemetry.Config{Sink: f},
	})
	node := rt.DefineClass("Node")
	th := rt.MainThread()
	g := rt.AddGlobal("leak")
	dead := th.New(node)
	if err := rt.AssertDead(dead); err != nil {
		t.Fatal(err)
	}
	g.Set(dead)
	for i := 0; i < 4; i++ {
		if err := rt.GC(); err != nil {
			t.Fatal(err)
		}
	}
	m := rt.Metrics()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadEvents(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	sum := telemetry.Summarize(events)

	if sum.Cycles != m.Cycles {
		t.Errorf("gcmon cycles %d != recorder cycles %d", sum.Cycles, m.Cycles)
	}
	if sum.Events != m.Events {
		t.Errorf("gcmon events %d != recorder events %d", sum.Events, m.Events)
	}
	if sum.Pause.Count != m.Pause.Count {
		t.Errorf("gcmon pauses %d != recorder pauses %d", sum.Pause.Count, m.Pause.Count)
	}
	byName := map[string]uint64{}
	for _, p := range sum.Phases {
		byName[p.Phase] = p.Count
	}
	for _, p := range m.Phases {
		if p.Count == 0 {
			continue
		}
		if byName[p.Phase] != p.Count {
			t.Errorf("gcmon phase %s count %d != recorder %d", p.Phase, byName[p.Phase], p.Count)
		}
	}
	var fileViolations uint64
	for _, n := range sum.Violations {
		fileViolations += n
	}
	if fileViolations != m.Violations {
		t.Errorf("gcmon violations %d != recorder %d", fileViolations, m.Violations)
	}

	// The one-shot path prints the same table Summarize formats.
	var out strings.Builder
	if err := summarizeOnce(&out, path); err != nil {
		t.Fatal(err)
	}
	if out.String() != sum.Format() {
		t.Error("summarizeOnce output differs from Summarize().Format()")
	}
}

// TestTailStateIncrementalConsume feeds a stream in arbitrary chunk
// boundaries — including mid-line splits — and checks the tail decodes
// exactly the complete lines.
func TestTailStateIncrementalConsume(t *testing.T) {
	lines := `{"seq":1,"ns":10,"ev":"cycle_begin","cycle":1}` + "\n" +
		`{"seq":2,"ns":20,"ev":"phase_end","phase":"mark","cycle":1,"dur_ns":5}` + "\n" +
		`{"seq":3,"ns":30,"ev":"pause","cycle":1,"dur_ns":7}` + "\n"
	for _, chunk := range []int{1, 3, 7, len(lines)} {
		var st tailState
		total := 0
		for off := 0; off < len(lines); off += chunk {
			end := off + chunk
			if end > len(lines) {
				end = len(lines)
			}
			total += st.consume([]byte(lines[off:end]))
		}
		if st.skipped != 0 {
			t.Errorf("chunk %d: %d lines skipped, want 0", chunk, st.skipped)
		}
		if total != 3 || len(st.events) != 3 {
			t.Errorf("chunk %d: decoded %d events (added %d), want 3", chunk, len(st.events), total)
		}
		if len(st.pending) != 0 {
			t.Errorf("chunk %d: %d bytes stuck in pending", chunk, len(st.pending))
		}
		sum := telemetry.Summarize(st.events)
		if sum.Cycles != 1 || sum.Pause.Count != 1 {
			t.Errorf("chunk %d: bad summary %+v", chunk, sum)
		}
	}
}

// TestConsumeResyncsAfterMalformedLine feeds a torn line between valid
// ones: the tail must skip it, count it, and keep decoding — one bad write
// from a dying producer must not kill follow mode.
func TestConsumeResyncsAfterMalformedLine(t *testing.T) {
	var st tailState
	stream := `{"seq":1,"ns":10,"ev":"cycle_begin","cycle":1}` + "\n" +
		`{"seq":2,"ns":20,"ev":"pause","cycle":1,"dur` + "\n" + // torn mid-key
		`not json at all` + "\n" +
		`{"seq":3,"ns":30,"ev":"pause","cycle":1,"dur_ns":7}` + "\n"
	added := st.consume([]byte(stream))
	if added != 2 {
		t.Errorf("consume added %d events, want 2", added)
	}
	if st.skipped != 2 {
		t.Errorf("skipped = %d, want 2", st.skipped)
	}
	sum := telemetry.Summarize(st.events)
	if sum.Cycles != 1 || sum.Pause.Count != 1 {
		t.Errorf("summary after resync: %+v", sum)
	}
	if note := skippedNote(st.skipped); !strings.Contains(note, "2 malformed") {
		t.Errorf("skippedNote = %q", note)
	}
	if skippedNote(0) != "" {
		t.Errorf("skippedNote(0) = %q, want empty", skippedNote(0))
	}
}

// writeFile replaces path's contents (creating it if needed).
func writeFile(t *testing.T, path, contents string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
}

// appendFile appends to path.
func appendFile(t *testing.T, path, contents string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(contents); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

const (
	evCycle  = `{"seq":1,"ns":10,"ev":"cycle_begin","cycle":1}` + "\n"
	evPause  = `{"seq":2,"ns":20,"ev":"pause","cycle":1,"dur_ns":7}` + "\n"
	evPause2 = `{"seq":3,"ns":30,"ev":"pause","cycle":1,"dur_ns":9}` + "\n"
)

// TestPollFollowsGrowth drives poll over a file the test grows, split
// mid-line across polls: events appear exactly once, and the partial line
// is carried until completed.
func TestPollFollowsGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	writeFile(t, path, evCycle)
	var st tailState
	added, reset, err := st.poll(path)
	if err != nil || reset || added != 1 {
		t.Fatalf("poll 1: added=%d reset=%v err=%v, want 1,false,nil", added, reset, err)
	}
	// Append a line split across two polls.
	half := len(evPause) / 2
	appendFile(t, path, evPause[:half])
	added, _, err = st.poll(path)
	if err != nil || added != 0 {
		t.Fatalf("poll 2 (partial line): added=%d err=%v, want 0,nil", added, err)
	}
	if len(st.pending) == 0 {
		t.Error("partial line not held in pending")
	}
	appendFile(t, path, evPause[half:])
	added, _, err = st.poll(path)
	if err != nil || added != 1 {
		t.Fatalf("poll 3 (line completed): added=%d err=%v, want 1,nil", added, err)
	}
	if len(st.events) != 2 || st.skipped != 0 {
		t.Errorf("events=%d skipped=%d, want 2,0", len(st.events), st.skipped)
	}
}

// TestPollResetsOnTruncation pins the restart contract: a file shrinking
// below the consumed offset resets the tail and re-reads from the start.
func TestPollResetsOnTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	writeFile(t, path, evCycle+evPause)
	var st tailState
	if added, _, err := st.poll(path); err != nil || added != 2 {
		t.Fatalf("initial poll: added=%d err=%v", added, err)
	}
	// Producer restarted: smaller file, fresh stream.
	writeFile(t, path, evCycle)
	added, reset, err := st.poll(path)
	if err != nil || !reset || added != 1 {
		t.Fatalf("post-truncation poll: added=%d reset=%v err=%v, want 1,true,nil", added, reset, err)
	}
	if len(st.events) != 1 {
		t.Errorf("events after reset = %d, want 1", len(st.events))
	}
}

// TestPollRetriesWhileRotated covers the log-rotation window: the file is
// gone for a poll (mid-swap), which must surface as a retryable error that
// leaves the tail intact, and the new (smaller) file must then be adopted
// as a reset — not a fatal exit, which is what shipped before.
func TestPollRetriesWhileRotated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	writeFile(t, path, evCycle+evPause+evPause2)
	var st tailState
	if added, _, err := st.poll(path); err != nil || added != 3 {
		t.Fatalf("initial poll: added=%d err=%v", added, err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	added, reset, err := st.poll(path)
	if err == nil {
		t.Fatal("poll with file missing returned nil error")
	}
	if reset || added != 0 {
		t.Fatalf("missing-file poll mutated state: added=%d reset=%v", added, reset)
	}
	if len(st.events) != 3 || st.offset == 0 {
		t.Errorf("tail state disturbed by transient failure: events=%d offset=%d", len(st.events), st.offset)
	}
	// Rotation completes: a fresh, smaller file appears.
	writeFile(t, path, evCycle)
	added, reset, err = st.poll(path)
	if err != nil || !reset || added != 1 {
		t.Fatalf("post-rotation poll: added=%d reset=%v err=%v, want 1,true,nil", added, reset, err)
	}
	if len(st.events) != 1 {
		t.Errorf("events after rotation = %d, want 1", len(st.events))
	}
}
