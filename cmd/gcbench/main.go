// Command gcbench regenerates the paper's performance figures:
//
//	gcbench -fig 2     Base vs Infrastructure total/mutator time (Figure 2)
//	gcbench -fig 3     Base vs Infrastructure GC time (Figure 3)
//	gcbench -fig 4     Base/Infrastructure/WithAssertions total time (Figure 4)
//	gcbench -fig 5     Base/Infrastructure/WithAssertions GC time (Figure 5)
//	gcbench -fig all   every paper figure
//	gcbench -fig trace parallel-tracer scaling report (not a paper figure)
//	gcbench -fig pause incremental pause-distribution report (not a paper figure)
//	gcbench -fig sweep sweep-mode pause comparison (not a paper figure)
//	gcbench -fig alloc allocation-throughput comparison (not a paper figure)
//	gcbench -fig zones zone pause-isolation report (not a paper figure)
//
// -workers N runs the paper figures with the parallel tracer (N marking
// goroutines); the published numbers use the default serial tracer.
// -incremental N selects the bounded mark budget for -fig pause; the paper
// figures themselves are always stop-the-world, as published.
// -concurrent switches -fig pause to the background-pacer report: the same
// churn workload under the stop-the-world collector and under the
// concurrent pacer at several trigger/slack settings, comparing
// mutator-visible latency tails and throughput.
// -sweepworkers N and -lazysweep select the sweep mode for the paper
// figures (the published numbers use the default eager serial sweep); -fig
// sweep instead measures every mode side by side and ignores both flags.
// -allocbuf N runs the paper figures with per-thread bump allocation
// buffers of N words (the published numbers use the default direct
// free-list allocation); -fig alloc instead measures the direct allocator
// against several buffer sizes side by side and ignores the flag.
// -events FILE enables telemetry on every measured runtime and streams its
// NDJSON event log there (cmd/gcmon summarizes it); the published numbers
// run with telemetry disabled.
// -zones N shards the heap for -fig zones' sharded variants (the report
// always includes the unzoned whole-heap baseline and a two-zone row).
// -zonegcworkers W switches -fig zones to its parallel-rotation arm: the
// same churn measured under serialized GCZones rotations and under
// GCZonesConcurrent with up to W zones collected simultaneously,
// comparing aggregate GC throughput (marked words/sec) at flat mutator
// throughput (make parzonebench records it in results/parallel_zones.txt).
//
// Methodology follows the paper: fixed heaps at roughly twice each
// benchmark's minimum live size, warmup iterations discarded, repeated
// trials with 90% confidence intervals. Absolute times are host-dependent;
// the normalized columns are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"repro/internal/harness"
	"repro/internal/vmheap"
)

// figNames is the single source of truth for the accepted -fig values: the
// usage string, validate's accepted set, and its error message all derive
// from it (TestFigUsageMatchesValidate keeps them from drifting).
var figNames = []string{"2", "3", "4", "5", "all", "trace", "pause", "sweep", "alloc", "zones"}

// figList renders figNames as an English list ("2, 3, ..., or alloc").
func figList() string {
	last := len(figNames) - 1
	return strings.Join(figNames[:last], ", ") + ", or " + figNames[last]
}

// figUsage is the -fig flag's usage string.
func figUsage() string { return "figure to regenerate: " + figList() }

// options collects the flag values so validation is testable apart from
// flag parsing and execution.
type options struct {
	fig          string
	trials       int
	measure      int
	warmup       int
	workers      int
	incremental  int
	concurrent   bool
	sweepWorkers int
	lazySweep    bool
	allocBuf     int
	events       string
	zones        int
	zoneGCW      int
}

// validate rejects option combinations that would otherwise fail deep
// inside a measurement run (or, worse, silently measure the wrong thing).
func validate(o options) error {
	if !slices.Contains(figNames, o.fig) {
		return fmt.Errorf("unknown figure %q (want %s)", o.fig, figList())
	}
	if o.trials < 1 {
		return fmt.Errorf("-trials %d: need at least one trial", o.trials)
	}
	if o.measure < 1 {
		return fmt.Errorf("-measure %d: need at least one timed iteration", o.measure)
	}
	if o.warmup < 0 {
		return fmt.Errorf("-warmup %d: cannot be negative", o.warmup)
	}
	if o.workers < 1 {
		return fmt.Errorf("-workers %d: need at least one trace worker", o.workers)
	}
	if o.incremental < 0 {
		return fmt.Errorf("-incremental %d: mark budget cannot be negative", o.incremental)
	}
	if o.incremental > 0 && o.workers > 1 {
		return fmt.Errorf("-incremental %d with -workers %d: the bounded mark slices are serial; parallel tracing and incremental marking cannot be combined", o.incremental, o.workers)
	}
	if o.incremental > 0 && o.fig != "pause" {
		return fmt.Errorf("-incremental %d with -fig %s: the paper figures are stop-the-world as published; incremental budgets apply only to -fig pause", o.incremental, o.fig)
	}
	if o.concurrent && o.fig != "pause" {
		return fmt.Errorf("-concurrent with -fig %s: the background-pacer report applies only to -fig pause", o.fig)
	}
	if o.concurrent && o.incremental > 0 {
		return fmt.Errorf("-concurrent with -incremental %d: the pacer budgets its own mark slices against the allocation rate; the two modes cannot be combined", o.incremental)
	}
	if o.concurrent && o.workers > 1 {
		return fmt.Errorf("-concurrent with -workers %d: the pacer's bounded mark slices are serial; parallel tracing and concurrent pacing cannot be combined", o.workers)
	}
	if o.sweepWorkers < 0 {
		return fmt.Errorf("-sweepworkers %d: cannot be negative", o.sweepWorkers)
	}
	if o.lazySweep && o.sweepWorkers >= 2 {
		return fmt.Errorf("-lazysweep with -sweepworkers %d: deferred reclamation is strictly in address order; the two sweep modes cannot be combined", o.sweepWorkers)
	}
	if (o.lazySweep || o.sweepWorkers >= 2) && (o.fig == "sweep" || o.fig == "pause" || o.fig == "trace" || o.fig == "alloc" || o.fig == "zones") {
		return fmt.Errorf("-sweepworkers/-lazysweep select a mode for the paper figures; -fig %s configures its own collector modes", o.fig)
	}
	if o.allocBuf < 0 {
		return fmt.Errorf("-allocbuf %d: cannot be negative", o.allocBuf)
	}
	if o.allocBuf > 0 && o.allocBuf < vmheap.MinBufferWords {
		return fmt.Errorf("-allocbuf %d: below the minimum buffer of %d words (use 0 for direct allocation)", o.allocBuf, vmheap.MinBufferWords)
	}
	if o.allocBuf > 0 && (o.fig == "sweep" || o.fig == "pause" || o.fig == "trace" || o.fig == "alloc" || o.fig == "zones") {
		return fmt.Errorf("-allocbuf selects a mode for the paper figures; -fig %s configures its own allocation modes", o.fig)
	}
	if o.events != "" && (o.fig == "sweep" || o.fig == "pause" || o.fig == "alloc" || o.fig == "zones") {
		return fmt.Errorf("-events streams telemetry from the paper-figure runs; -fig %s configures its own runtimes", o.fig)
	}
	if o.zones < 2 {
		return fmt.Errorf("-zones %d: sharding needs at least two zones", o.zones)
	}
	if maxZones := harness.DefaultZoneReport.HeapWords / vmheap.MinZoneWords; o.zones > maxZones {
		return fmt.Errorf("-zones %d: the %d-word report heap cannot give each zone the minimum %d words (max %d zones)", o.zones, harness.DefaultZoneReport.HeapWords, vmheap.MinZoneWords, maxZones)
	}
	if o.zones != 4 && o.fig != "zones" {
		return fmt.Errorf("-zones %d with -fig %s: the zone count applies only to -fig zones", o.zones, o.fig)
	}
	if o.fig == "zones" && o.workers > 1 {
		return fmt.Errorf("-workers %d with -fig zones: per-zone collections trace serially; parallel tracing does not apply", o.workers)
	}
	if o.zoneGCW < 0 {
		return fmt.Errorf("-zonegcworkers %d: cannot be negative", o.zoneGCW)
	}
	if o.zoneGCW > 0 && o.fig != "zones" {
		return fmt.Errorf("-zonegcworkers %d with -fig %s: concurrent rotation is -fig zones' parallel arm; it needs -zones", o.zoneGCW, o.fig)
	}
	if o.zoneGCW > o.zones {
		return fmt.Errorf("-zonegcworkers %d exceeds -zones %d: cannot collect more zones simultaneously than exist", o.zoneGCW, o.zones)
	}
	return nil
}

func main() {
	fig := flag.String("fig", "all", figUsage())
	trials := flag.Int("trials", harness.DefaultRunConfig.Trials, "trials per configuration")
	measure := flag.Int("measure", harness.DefaultRunConfig.Measure, "timed iterations per trial")
	warmup := flag.Int("warmup", harness.DefaultRunConfig.Warmup, "warmup iterations per trial")
	workers := flag.Int("workers", 1, "mark-phase trace workers (1 = serial, as published)")
	incremental := flag.Int("incremental", 0, "bounded mark budget for -fig pause (0 = stop-the-world)")
	concurrent := flag.Bool("concurrent", false, "run -fig pause as the background-pacer report (stop-the-world vs concurrent trigger/slack settings)")
	sweepWorkers := flag.Int("sweepworkers", 1, "sweep-phase workers for the paper figures (1 = eager serial, as published)")
	lazySweep := flag.Bool("lazysweep", false, "defer reclamation to allocation time for the paper figures")
	allocBuf := flag.Int("allocbuf", 0, "per-thread allocation buffer words for the paper figures (0 = direct free-list allocation, as published)")
	events := flag.String("events", "", "write telemetry NDJSON events from the measured runtimes to this file (paper figures and -fig trace)")
	zones := flag.Int("zones", 4, "zone count for -fig zones' largest sharded variant")
	zoneGCW := flag.Int("zonegcworkers", 0, "run -fig zones as the parallel-rotation report, collecting up to this many zones simultaneously (0 = pause-isolation report)")
	quiet := flag.Bool("q", false, "suppress progress output")
	csvPath := flag.String("csv", "", "also write raw measurements to this CSV file")
	flag.Parse()

	opts := options{
		fig:          *fig,
		trials:       *trials,
		measure:      *measure,
		warmup:       *warmup,
		workers:      *workers,
		incremental:  *incremental,
		concurrent:   *concurrent,
		sweepWorkers: *sweepWorkers,
		lazySweep:    *lazySweep,
		allocBuf:     *allocBuf,
		events:       *events,
		zones:        *zones,
		zoneGCW:      *zoneGCW,
	}
	if err := validate(opts); err != nil {
		fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
		os.Exit(2)
	}

	rc := harness.RunConfig{
		Warmup: *warmup, Measure: *measure, Trials: *trials,
		TraceWorkers: *workers, SweepWorkers: *sweepWorkers, LazySweep: *lazySweep,
		AllocBufWords: *allocBuf,
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		rc.EventSink = f
	}
	progress := func(name string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "measuring %s...\n", name)
		}
	}

	if *fig == "zones" && *zoneGCW > 0 {
		cfg := harness.DefaultParZoneReport
		cfg.Zones = *zones
		cfg.Workers = []int{0}
		for w := 1; w < *zoneGCW; w *= 2 {
			cfg.Workers = append(cfg.Workers, w)
		}
		cfg.Workers = append(cfg.Workers, *zoneGCW)
		rows := harness.RunParZoneReport(cfg, progress)
		fmt.Println(harness.FormatParZoneReport(rows))
		return
	}

	if *fig == "zones" {
		cfg := harness.DefaultZoneReport
		if *zones != 4 {
			cfg.Variants = []harness.ZoneVariant{
				{Name: "unzoned", Zones: 0},
				{Name: "zones-2", Zones: 2},
			}
			if *zones != 2 {
				cfg.Variants = append(cfg.Variants,
					harness.ZoneVariant{Name: fmt.Sprintf("zones-%d", *zones), Zones: *zones})
			}
		}
		rows := harness.RunZoneReport(cfg, progress)
		fmt.Println(harness.FormatZoneReport(rows))
		return
	}

	if *fig == "alloc" {
		rows := harness.RunAllocReport(harness.DefaultAllocReport, progress)
		fmt.Println(harness.FormatAllocReport(harness.DefaultAllocReport, rows))
		return
	}

	if *fig == "sweep" {
		rows := harness.RunSweepReport(harness.DefaultSweepReport, progress)
		fmt.Println(harness.FormatSweepReport(harness.DefaultSweepReport, rows))
		return
	}

	if *fig == "pause" && *concurrent {
		rows := harness.RunConcurrentPacing(harness.DefaultConcurrentPacing, progress)
		fmt.Println(harness.FormatConcurrentPacing(rows))
		return
	}

	if *fig == "pause" {
		cfg := harness.DefaultPauseReport
		if *incremental > 0 {
			// A single explicit budget replaces the default sweep; budget 0
			// stays as the baseline row.
			cfg.Budgets = []int{0, *incremental}
		}
		rows := harness.RunPauseReport(cfg, progress)
		fmt.Println(harness.FormatPauseReport(rows))
		return
	}

	if *fig == "trace" {
		rows := harness.RunTraceScaling(rc, harness.DefaultTraceScaling, []int{1, 2, 4, 8}, progress)
		fmt.Println(harness.FormatTraceScaling(rows))
		return
	}

	need23 := *fig == "2" || *fig == "3" || *fig == "all"
	need45 := *fig == "4" || *fig == "5" || *fig == "all"

	var allRows []harness.Row
	if need23 {
		rows := harness.RunFig23(rc, progress)
		allRows = append(allRows, rows...)
		if *fig == "2" || *fig == "all" {
			fmt.Println(harness.FormatFig2(rows))
		}
		if *fig == "3" || *fig == "all" {
			fmt.Println(harness.FormatFig3(rows))
		}
	}
	if need45 {
		rows := harness.RunFig45(rc, progress)
		allRows = append(allRows, rows...)
		if *fig == "4" || *fig == "all" {
			fmt.Println(harness.FormatFig4(rows))
		}
		if *fig == "5" || *fig == "all" {
			fmt.Println(harness.FormatFig5(rows))
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := harness.WriteCSV(f, allRows); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}
