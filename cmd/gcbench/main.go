// Command gcbench regenerates the paper's performance figures:
//
//	gcbench -fig 2     Base vs Infrastructure total/mutator time (Figure 2)
//	gcbench -fig 3     Base vs Infrastructure GC time (Figure 3)
//	gcbench -fig 4     Base/Infrastructure/WithAssertions total time (Figure 4)
//	gcbench -fig 5     Base/Infrastructure/WithAssertions GC time (Figure 5)
//	gcbench -fig all   every paper figure
//	gcbench -fig trace parallel-tracer scaling report (not a paper figure)
//
// -workers N runs the paper figures with the parallel tracer (N marking
// goroutines); the published numbers use the default serial tracer.
//
// Methodology follows the paper: fixed heaps at roughly twice each
// benchmark's minimum live size, warmup iterations discarded, repeated
// trials with 90% confidence intervals. Absolute times are host-dependent;
// the normalized columns are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, all, or trace")
	trials := flag.Int("trials", harness.DefaultRunConfig.Trials, "trials per configuration")
	measure := flag.Int("measure", harness.DefaultRunConfig.Measure, "timed iterations per trial")
	warmup := flag.Int("warmup", harness.DefaultRunConfig.Warmup, "warmup iterations per trial")
	workers := flag.Int("workers", 1, "mark-phase trace workers (1 = serial, as published)")
	quiet := flag.Bool("q", false, "suppress progress output")
	csvPath := flag.String("csv", "", "also write raw measurements to this CSV file")
	flag.Parse()

	rc := harness.RunConfig{Warmup: *warmup, Measure: *measure, Trials: *trials, TraceWorkers: *workers}
	progress := func(name string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "measuring %s...\n", name)
		}
	}

	if *fig == "trace" {
		rows := harness.RunTraceScaling(rc, harness.DefaultTraceScaling, []int{1, 2, 4, 8}, progress)
		fmt.Println(harness.FormatTraceScaling(rows))
		return
	}

	need23 := *fig == "2" || *fig == "3" || *fig == "all"
	need45 := *fig == "4" || *fig == "5" || *fig == "all"
	if !need23 && !need45 {
		fmt.Fprintf(os.Stderr, "gcbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	var allRows []harness.Row
	if need23 {
		rows := harness.RunFig23(rc, progress)
		allRows = append(allRows, rows...)
		if *fig == "2" || *fig == "all" {
			fmt.Println(harness.FormatFig2(rows))
		}
		if *fig == "3" || *fig == "all" {
			fmt.Println(harness.FormatFig3(rows))
		}
	}
	if need45 {
		rows := harness.RunFig45(rc, progress)
		allRows = append(allRows, rows...)
		if *fig == "4" || *fig == "all" {
			fmt.Println(harness.FormatFig4(rows))
		}
		if *fig == "5" || *fig == "all" {
			fmt.Println(harness.FormatFig5(rows))
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := harness.WriteCSV(f, allRows); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}
