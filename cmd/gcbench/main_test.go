package main

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

func defaults() options {
	return options{
		fig:          "all",
		trials:       harness.DefaultRunConfig.Trials,
		measure:      harness.DefaultRunConfig.Measure,
		warmup:       harness.DefaultRunConfig.Warmup,
		workers:      1,
		sweepWorkers: 1,
		zones:        4,
	}
}

// TestFigUsageMatchesValidate pins the -fig usage string to validate's
// accepted set: both derive from figNames, and this test fails if either
// ever hardcodes its own list again (the usage string once advertised only
// "2, 3, 4, 5, all, trace, or pause" while validate also took sweep and
// alloc).
func TestFigUsageMatchesValidate(t *testing.T) {
	usage := figUsage()
	for _, name := range figNames {
		if !strings.Contains(usage, name) {
			t.Errorf("usage string %q does not mention accepted figure %q", usage, name)
		}
		o := defaults()
		o.fig = name
		if err := validate(o); err != nil {
			t.Errorf("figure %q is advertised in the usage string but rejected: %v", name, err)
		}
	}
	// The error message for an unknown figure lists the same set.
	o := defaults()
	o.fig = "nope"
	err := validate(o)
	if err == nil {
		t.Fatal("validate accepted an unknown figure")
	}
	for _, name := range figNames {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-figure error %q does not list accepted figure %q", err, name)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []func(*options){
		func(o *options) {},
		func(o *options) { o.fig = "2" },
		func(o *options) { o.fig = "trace"; o.workers = 8 },
		func(o *options) { o.fig = "pause" },
		func(o *options) { o.fig = "pause"; o.incremental = 5000 },
		func(o *options) { o.fig = "pause"; o.concurrent = true },
		func(o *options) { o.warmup = 0 },
		func(o *options) { o.fig = "sweep" },
		func(o *options) { o.fig = "2"; o.sweepWorkers = 4 },
		func(o *options) { o.fig = "3"; o.lazySweep = true },
		func(o *options) { o.fig = "alloc" },
		func(o *options) { o.fig = "2"; o.allocBuf = 1024 },
		func(o *options) { o.fig = "all"; o.allocBuf = 256; o.lazySweep = true },
		func(o *options) { o.events = "events.ndjson" },
		func(o *options) { o.fig = "trace"; o.workers = 4; o.events = "ev.ndjson" },
		func(o *options) { o.fig = "zones" },
		func(o *options) { o.fig = "zones"; o.zones = 2 },
		func(o *options) { o.fig = "zones"; o.zones = 8 },
		func(o *options) { o.fig = "zones"; o.zoneGCW = 1 },
		func(o *options) { o.fig = "zones"; o.zoneGCW = 4 },
		func(o *options) { o.fig = "zones"; o.zones = 8; o.zoneGCW = 8 },
		func(o *options) { o.fig = "zones"; o.zones = 2; o.zoneGCW = 2 },
	}
	for i, mut := range cases {
		o := defaults()
		mut(&o)
		if err := validate(o); err != nil {
			t.Errorf("case %d: validate(%+v) = %v, want nil", i, o, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		mut  func(*options)
		want string
	}{
		{func(o *options) { o.fig = "6" }, "unknown figure"},
		{func(o *options) { o.trials = 0 }, "-trials"},
		{func(o *options) { o.measure = 0 }, "-measure"},
		{func(o *options) { o.warmup = -1 }, "-warmup"},
		{func(o *options) { o.workers = 0 }, "-workers"},
		{func(o *options) { o.incremental = -1 }, "cannot be negative"},
		// Incremental marking is serial by design; combining it with the
		// parallel tracer must be rejected here, not by a runtime panic.
		{func(o *options) { o.fig = "pause"; o.incremental = 100; o.workers = 4 }, "cannot be combined"},
		// The published figures are stop-the-world; a budget on them would
		// silently measure a different collector than the paper's.
		{func(o *options) { o.fig = "all"; o.incremental = 100 }, "stop-the-world as published"},
		{func(o *options) { o.fig = "3"; o.incremental = 100 }, "stop-the-world as published"},
		// The pacer report is -fig pause's concurrent arm; on the paper
		// figures the flag would silently measure nothing.
		{func(o *options) { o.fig = "all"; o.concurrent = true }, "applies only to -fig pause"},
		// The pacer schedules its own slices; an explicit budget or the
		// parallel tracer would fight it.
		{func(o *options) { o.fig = "pause"; o.concurrent = true; o.incremental = 100 }, "cannot be combined"},
		{func(o *options) { o.fig = "pause"; o.concurrent = true; o.workers = 4 }, "cannot be combined"},
		{func(o *options) { o.sweepWorkers = -1 }, "-sweepworkers"},
		// Lazy sweeping reclaims strictly in address order; there is nothing
		// for sweep workers to fan out over.
		{func(o *options) { o.lazySweep = true; o.sweepWorkers = 4 }, "cannot be combined"},
		// The side-by-side reports pick their own modes; a stray mode flag
		// would otherwise be silently ignored.
		{func(o *options) { o.fig = "sweep"; o.lazySweep = true }, "configures its own"},
		{func(o *options) { o.fig = "pause"; o.sweepWorkers = 2 }, "configures its own"},
		{func(o *options) { o.allocBuf = -1 }, "-allocbuf"},
		// Below vmheap.MinBufferWords would panic in core.New mid-run.
		{func(o *options) { o.fig = "2"; o.allocBuf = 32 }, "below the minimum"},
		// -fig alloc measures direct against its own buffer-size ladder; a
		// stray -allocbuf would be silently ignored.
		{func(o *options) { o.fig = "alloc"; o.allocBuf = 512 }, "configures its own"},
		{func(o *options) { o.fig = "sweep"; o.allocBuf = 512 }, "configures its own"},
		// The side-by-side reports build their own runtimes; an -events file
		// would be created and then silently stay empty.
		{func(o *options) { o.fig = "pause"; o.events = "ev.ndjson" }, "configures its own"},
		{func(o *options) { o.fig = "sweep"; o.events = "ev.ndjson" }, "configures its own"},
		{func(o *options) { o.fig = "alloc"; o.events = "ev.ndjson" }, "configures its own"},
		// A zone count of 0, 1, or below would panic in vmheap.NewZoned (or
		// silently mean "no sharding"); reject it at the flag boundary.
		{func(o *options) { o.fig = "zones"; o.zones = 0 }, "at least two zones"},
		{func(o *options) { o.fig = "zones"; o.zones = 1 }, "at least two zones"},
		{func(o *options) { o.fig = "zones"; o.zones = -3 }, "at least two zones"},
		// More zones than the report heap can give the minimum extent would
		// panic when the sharded runtime is built.
		{func(o *options) { o.fig = "zones"; o.zones = 1 << 20 }, "max"},
		// The zone count shapes only the zone report; on any other figure a
		// non-default value would be silently ignored.
		{func(o *options) { o.fig = "2"; o.zones = 8 }, "applies only to -fig zones"},
		{func(o *options) { o.fig = "pause"; o.zones = 2 }, "applies only to -fig zones"},
		// Per-zone collections trace serially; the parallel tracer does not
		// apply to the zone report.
		{func(o *options) { o.fig = "zones"; o.workers = 4 }, "trace serially"},
		// The zone report builds its own runtimes and modes, like the other
		// side-by-side reports.
		{func(o *options) { o.fig = "zones"; o.lazySweep = true }, "configures its own"},
		{func(o *options) { o.fig = "zones"; o.sweepWorkers = 2 }, "configures its own"},
		{func(o *options) { o.fig = "zones"; o.allocBuf = 512 }, "configures its own"},
		{func(o *options) { o.fig = "zones"; o.events = "ev.ndjson" }, "configures its own"},
		{func(o *options) { o.fig = "zones"; o.zoneGCW = -1 }, "cannot be negative"},
		// Concurrent rotation is the zone report's parallel arm; on any
		// other figure the worker count would be silently ignored.
		{func(o *options) { o.fig = "all"; o.zoneGCW = 2 }, "needs -zones"},
		{func(o *options) { o.fig = "pause"; o.zoneGCW = 4 }, "needs -zones"},
		// More workers than zones cannot all be in flight; reject rather
		// than silently capping inside GCZonesConcurrent.
		{func(o *options) { o.fig = "zones"; o.zoneGCW = 8 }, "exceeds -zones"},
		{func(o *options) { o.fig = "zones"; o.zones = 2; o.zoneGCW = 3 }, "exceeds -zones"},
	}
	for i, c := range cases {
		o := defaults()
		c.mut(&o)
		err := validate(o)
		if err == nil {
			t.Errorf("case %d: validate(%+v) = nil, want error containing %q", i, o, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: validate(%+v) = %q, want it to contain %q", i, o, err, c.want)
		}
	}
}
