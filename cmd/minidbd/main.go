// Command minidbd serves the minidb workload over HTTP — the network-facing
// half of the paper's _209_db case study. Request handlers allocate through
// a pool of buffered mutator threads on one shared runtime, so GC pauses
// surface as request tail latency, and the telemetry stream (one request
// span per reply, queueing included) is the same NDJSON file `gcmon
// -follow` summarizes live.
//
// Serve mode:
//
//	minidbd -addr :8080 -gc concurrent -events /tmp/minidbd.ndjson
//
// Endpoints: /find?key=N, /scan, /add, /remove, /session (the session-cache
// op; with -leakcache it is the paper's injected retention defect, with
// -assert the expired sessions are asserted dead), /metrics (Prometheus
// text), /stats (counter snapshot), /healthz.
//
// Selfdrive mode runs the sustained-load SLO sweep against this same
// server stack through a loopback HTTP transport — the full network path —
// one fresh runtime per (collector, rate) cell:
//
//	minidbd -selfdrive -gc stw,concurrent -rates 200,500 -duration 2s
//
// It prints the latency-vs-throughput report (p50/p95/p99 per cell from
// the offline summary of each cell's event stream) and applies the SLO
// gate: aggregate request p99 at -slo-rps must be within -slo-p99. A gate
// miss exits 1 unless -gate-advisory.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/minidb"
	"repro/internal/telemetry"
	"repro/internal/vmheap"
)

// options collects the flag values so validation is testable apart from
// flag parsing and execution.
type options struct {
	addr      string
	heapWords int
	entries   int
	workers   int
	allocBuf  int
	gc        string
	leakCache bool
	assert    bool
	events    string

	selfdrive    bool
	eventDir     string
	rates        string
	duration     time.Duration
	inflight     int
	sloRPS       int
	sloP99       time.Duration
	gateAdvisory bool
}

// parseRates decodes the -rates comma list.
func parseRates(s string) ([]int, error) {
	var rates []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-rates %q: %q is not a positive request rate", s, part)
		}
		rates = append(rates, n)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-rates %q: no rates given", s)
	}
	return rates, nil
}

// parseCollectors decodes the -gc comma list against the harness registry.
func parseCollectors(s string) ([]string, error) {
	var names []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !harness.KnownServingCollector(part) {
			return nil, fmt.Errorf("-gc %q: unknown collector config %q (want %s)",
				s, part, strings.Join(harness.ServingCollectorNames(), ", "))
		}
		names = append(names, part)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-gc %q: no collector configs given", s)
	}
	return names, nil
}

// validate rejects option combinations that would otherwise fail deep
// inside the server or silently measure the wrong thing.
func validate(o options) error {
	if _, err := parseCollectors(o.gc); err != nil {
		return err
	}
	if !o.selfdrive {
		if cs, _ := parseCollectors(o.gc); len(cs) > 1 {
			return fmt.Errorf("-gc %q: serve mode runs one collector config; a comma list is for -selfdrive", o.gc)
		}
		if o.addr == "" {
			return fmt.Errorf("-addr is required in serve mode")
		}
	}
	if o.heapWords < vmheap.MinHeapWords {
		return fmt.Errorf("-heapwords %d: below the minimum heap of %d words", o.heapWords, vmheap.MinHeapWords)
	}
	if o.entries < 1 {
		return fmt.Errorf("-entries %d: need at least one record", o.entries)
	}
	if o.workers < 1 {
		return fmt.Errorf("-workers %d: need at least one worker thread", o.workers)
	}
	if o.allocBuf < 0 {
		return fmt.Errorf("-allocbuf %d: cannot be negative", o.allocBuf)
	}
	if o.allocBuf > 0 && o.allocBuf < vmheap.MinBufferWords {
		return fmt.Errorf("-allocbuf %d: below the minimum buffer of %d words (use 0 for direct allocation)", o.allocBuf, vmheap.MinBufferWords)
	}
	// -assert with -leakcache is deliberately allowed in serve mode:
	// serving with the defect armed is how the demo shows gcmon catching
	// it live.
	if o.selfdrive {
		if o.events != "" {
			return fmt.Errorf("-events with -selfdrive: the sweep writes one stream per cell into its own directory; point gcmon at the serving_*.ndjson files it reports")
		}
		if _, err := parseRates(o.rates); err != nil {
			return err
		}
		if o.duration <= 0 {
			return fmt.Errorf("-duration %v: the measured window must be positive", o.duration)
		}
		if o.inflight < 1 {
			return fmt.Errorf("-inflight %d: need at least one outstanding request", o.inflight)
		}
		if o.sloRPS < 1 {
			return fmt.Errorf("-slo-rps %d: the gate rate must be positive", o.sloRPS)
		}
		if rates, _ := parseRates(o.rates); !contains(rates, o.sloRPS) {
			return fmt.Errorf("-slo-rps %d is not among the swept -rates %s: the gate would have nothing to measure", o.sloRPS, o.rates)
		}
		if o.sloP99 <= 0 {
			return fmt.Errorf("-slo-p99 %v: the latency budget must be positive", o.sloP99)
		}
	} else {
		if o.gateAdvisory {
			return fmt.Errorf("-gate-advisory without -selfdrive: the gate only runs in selfdrive mode")
		}
		if o.eventDir != "" {
			return fmt.Errorf("-eventdir without -selfdrive: serve mode streams one file via -events")
		}
	}
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func main() {
	addr := flag.String("addr", ":8080", "serve-mode listen address")
	heapWords := flag.Int("heapwords", 1<<21, "managed heap size in words")
	entries := flag.Int("entries", 5000, "initial database records")
	workers := flag.Int("workers", 4, "mutator worker threads")
	allocBuf := flag.Int("allocbuf", 2048, "per-thread allocation buffer words (0 = direct free-list allocation)")
	gc := flag.String("gc", "stw", "collector config: "+strings.Join(harness.ServingCollectorNames(), ", ")+" (comma list in -selfdrive)")
	leakCache := flag.Bool("leakcache", false, "inject the session-retention defect (expired sessions kept in a shared cache)")
	assert := flag.Bool("assert", false, "arm the paper's assertions: ownership on add, assert-dead on remove and session expiry")
	events := flag.String("events", "", "stream telemetry NDJSON here (gcmon -follow summarizes it live)")

	selfdrive := flag.Bool("selfdrive", false, "run the SLO sweep against a loopback HTTP server instead of serving")
	eventDir := flag.String("eventdir", "", "selfdrive: directory for the per-cell serving_*.ndjson streams (default: a temp dir)")
	rates := flag.String("rates", "200,500", "selfdrive: comma list of open-loop request rates (rps)")
	duration := flag.Duration("duration", 2*time.Second, "selfdrive: measured window per cell")
	inflight := flag.Int("inflight", 256, "selfdrive: max outstanding requests before the generator counts drops")
	sloRPS := flag.Int("slo-rps", 200, "selfdrive: gate rate — must be one of -rates")
	sloP99 := flag.Duration("slo-p99", 50*time.Millisecond, "selfdrive: aggregate request p99 budget at -slo-rps")
	gateAdvisory := flag.Bool("gate-advisory", false, "selfdrive: report the gate verdict but always exit 0")
	flag.Parse()

	opts := options{
		addr: *addr, heapWords: *heapWords, entries: *entries,
		workers: *workers, allocBuf: *allocBuf, gc: *gc,
		leakCache: *leakCache, assert: *assert, events: *events,
		selfdrive: *selfdrive, eventDir: *eventDir, rates: *rates, duration: *duration,
		inflight: *inflight, sloRPS: *sloRPS, sloP99: *sloP99,
		gateAdvisory: *gateAdvisory,
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "minidbd: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if err := validate(opts); err != nil {
		fmt.Fprintf(os.Stderr, "minidbd: %v\n", err)
		os.Exit(2)
	}

	if opts.selfdrive {
		os.Exit(runSelfdrive(opts))
	}
	if err := runServe(opts); err != nil {
		fmt.Fprintf(os.Stderr, "minidbd: %v\n", err)
		os.Exit(1)
	}
}

// serverConfig builds the minidb server config shared by both modes.
func serverConfig(o options) minidb.ServerConfig {
	return minidb.ServerConfig{
		Workers:            o.workers,
		AssertDeadSessions: o.assert,
		DB: minidb.Config{
			Entries:            o.entries,
			AssertOwnership:    o.assert,
			AssertDeadOnRemove: o.assert,
			LeakCache:          o.leakCache,
		},
	}
}

// runServe is the long-running server mode.
func runServe(o options) error {
	coreCfg := core.Config{
		HeapWords:    o.heapWords,
		Mode:         core.Infrastructure,
		AllocBuffers: o.allocBuf,
	}
	var sink *os.File
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			return err
		}
		sink = f
		coreCfg.Telemetry = &telemetry.Config{Sink: f}
	} else {
		coreCfg.Telemetry = &telemetry.Config{}
	}
	harness.ApplyServingCollector(o.gc, &coreCfg)
	rt := core.New(coreCfg)
	srv := minidb.NewServer(rt, serverConfig(o))

	httpSrv := &http.Server{Addr: o.addr, Handler: newMux(rt, srv)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "minidbd: serving on %s (gc=%s workers=%d heap=%d words)\n",
		o.addr, o.gc, o.workers, o.heapWords)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		rt.Close()
		return err
	case s := <-sigc:
		fmt.Fprintf(os.Stderr, "minidbd: %v, shutting down\n", s)
	}
	httpSrv.Close()
	srv.Close()
	if err := rt.Close(); err != nil {
		return err
	}
	if sink != nil {
		return sink.Close()
	}
	return nil
}

// newMux wires the request endpoints plus metrics/health/stats.
func newMux(rt *core.Runtime, srv *minidb.Server) *http.ServeMux {
	mux := http.NewServeMux()
	for op := minidb.Op(0); op < minidb.NumOps; op++ {
		op := op
		mux.HandleFunc("/"+op.String(), func(w http.ResponseWriter, r *http.Request) {
			var key int64
			if s := r.URL.Query().Get("key"); s != "" {
				n, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					http.Error(w, fmt.Sprintf("bad key %q", s), http.StatusBadRequest)
					return
				}
				key = n
			}
			resp, err := srv.Do(op, key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			fmt.Fprintf(w, "op=%s found=%v len=%d sum=%d\n", op, resp.Found, resp.Len, resp.Sum)
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := rt.Metrics().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := srv.Stats()
		for op := minidb.Op(0); op < minidb.NumOps; op++ {
			fmt.Fprintf(w, "served{op=%q} %d\n", op, st.Served[op])
		}
		fmt.Fprintf(w, "failed %d\nexpired %d\nleaked %d\nviolations %d\n",
			st.Failed, st.Expired, st.Leaked, len(rt.Violations()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// loopbackTransport wires a sweep cell's server behind a real HTTP
// listener on 127.0.0.1 and issues its requests as HTTP GETs, so the
// measured spans cover the full network path the serve mode exposes. The
// client timeout bounds every request: a wedged cell surfaces as request
// errors in the report instead of hanging the sweep (and the CI smoke arm)
// on driveOpenLoop's final wait.
func loopbackTransport(timeout time.Duration) harness.Transport {
	return func(srv *minidb.Server) (harness.DoFunc, func(), error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		httpSrv := &http.Server{Handler: newMux(srv.Runtime(), srv)}
		go httpSrv.Serve(ln)
		base := "http://" + ln.Addr().String()
		client := &http.Client{Timeout: timeout}
		do := func(op minidb.Op, key int64) error {
			resp, err := client.Get(fmt.Sprintf("%s/%s?key=%d", base, op, key))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s: HTTP %d", op, resp.StatusCode)
			}
			return nil
		}
		shutdown := func() {
			httpSrv.Close()
			client.CloseIdleConnections()
		}
		return do, shutdown, nil
	}
}

// requestTimeout picks the loopback client timeout: comfortably above both
// the SLO budget and the worst legitimate queueing delay (a request sent at
// the start of a cell can wait out most of its window under overload), so
// only a genuinely stuck server trips it.
func requestTimeout(o options) time.Duration {
	t := 20 * o.sloP99
	if t < 2*time.Second {
		t = 2 * time.Second
	}
	return o.duration + t
}

// runSelfdrive runs the sweep and gate; returns the process exit code.
func runSelfdrive(o options) int {
	collectors, _ := parseCollectors(o.gc)
	rates, _ := parseRates(o.rates)
	cfg := harness.ServingConfig{
		HeapWords:     o.heapWords,
		Workers:       o.workers,
		AllocBufWords: o.allocBuf,
		Entries:       o.entries,
		LeakCache:     o.leakCache,
		Assert:        o.assert,
		Collectors:    collectors,
		Rates:         rates,
		Duration:      o.duration,
		MaxInflight:   o.inflight,
		EventDir:      o.eventDir,
	}
	fmt.Fprintf(os.Stderr, "minidbd: sweeping %d collector configs x %d rates, %v per cell over loopback HTTP\n",
		len(collectors), len(rates), o.duration)
	report, err := harness.RunServingSweep(cfg, loopbackTransport(requestTimeout(o)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "minidbd: sweep: %v\n", err)
		return 1
	}
	gates, ok := harness.EvaluateServingGate(report, o.sloRPS, o.sloP99)
	fmt.Print(harness.FormatServingReport(report, gates))
	if !ok {
		if o.gateAdvisory {
			fmt.Fprintln(os.Stderr, "minidbd: SLO gate missed (advisory)")
			return 0
		}
		fmt.Fprintln(os.Stderr, "minidbd: SLO gate missed")
		return 1
	}
	return 0
}
