package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/minidb"
	"repro/internal/telemetry"
)

// goodServe and goodDrive are valid baselines the reject cases perturb.
func goodServe() options {
	return options{
		addr: ":8080", heapWords: 1 << 21, entries: 100, workers: 2,
		allocBuf: 2048, gc: "stw",
	}
}

func goodDrive() options {
	o := goodServe()
	o.addr = ""
	o.selfdrive = true
	o.gc = "stw,concurrent"
	o.rates = "100,200"
	o.duration = time.Second
	o.inflight = 64
	o.sloRPS = 200
	o.sloP99 = 50 * time.Millisecond
	return o
}

func TestValidateAccepts(t *testing.T) {
	withEvents := goodServe()
	withEvents.events = "ev.ndjson"
	leakDemo := goodServe()
	leakDemo.leakCache = true
	leakDemo.assert = true
	advisory := goodDrive()
	advisory.gateAdvisory = true
	zones := goodDrive()
	zones.gc = "zones"
	zones.sloRPS = 100
	direct := goodServe()
	direct.allocBuf = 0

	for i, o := range []options{
		goodServe(), goodDrive(), withEvents, leakDemo, advisory, zones, direct,
	} {
		if err := validate(o); err != nil {
			t.Errorf("case %d: validate(%+v) = %v, want nil", i, o, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"unknown collector", func(o *options) { o.gc = "shinynew" }, "unknown collector"},
		{"empty collector list", func(o *options) { o.gc = ", ," }, "no collector configs"},
		{"serve with collector list", func(o *options) { o.gc = "stw,concurrent" }, "serve mode runs one"},
		{"no addr", func(o *options) { o.addr = "" }, "-addr"},
		{"tiny heap", func(o *options) { o.heapWords = 8 }, "-heapwords"},
		{"no entries", func(o *options) { o.entries = 0 }, "-entries"},
		{"no workers", func(o *options) { o.workers = 0 }, "-workers"},
		{"negative allocbuf", func(o *options) { o.allocBuf = -1 }, "-allocbuf"},
		{"sub-minimum allocbuf", func(o *options) { o.allocBuf = 8 }, "minimum buffer"},
		{"gate flag without selfdrive", func(o *options) { o.gateAdvisory = true }, "-gate-advisory"},
		{"eventdir without selfdrive", func(o *options) { o.eventDir = "d" }, "-eventdir"},
	}
	for _, c := range cases {
		o := goodServe()
		c.mut(&o)
		err := validate(o)
		if err == nil {
			t.Errorf("%s: validate(%+v) = nil, want error containing %q", c.name, o, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: validate = %q, want it to contain %q", c.name, err, c.want)
		}
	}

	driveCases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"events in selfdrive", func(o *options) { o.events = "ev" }, "-events"},
		{"bad rates", func(o *options) { o.rates = "100,zero" }, "-rates"},
		{"negative rate", func(o *options) { o.rates = "-5" }, "-rates"},
		{"empty rates", func(o *options) { o.rates = "," }, "no rates"},
		{"zero duration", func(o *options) { o.duration = 0 }, "-duration"},
		{"no inflight", func(o *options) { o.inflight = 0 }, "-inflight"},
		{"zero gate rate", func(o *options) { o.sloRPS = 0 }, "-slo-rps"},
		{"unswept gate rate", func(o *options) { o.sloRPS = 999 }, "not among the swept"},
		{"zero budget", func(o *options) { o.sloP99 = 0 }, "-slo-p99"},
	}
	for _, c := range driveCases {
		o := goodDrive()
		c.mut(&o)
		err := validate(o)
		if err == nil {
			t.Errorf("%s: validate(%+v) = nil, want error containing %q", c.name, o, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: validate = %q, want it to contain %q", c.name, err, c.want)
		}
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates(" 100, 250 ,500")
	if err != nil || len(rates) != 3 || rates[0] != 100 || rates[2] != 500 {
		t.Errorf("parseRates = %v, %v", rates, err)
	}
}

func TestParseCollectors(t *testing.T) {
	names, err := parseCollectors("stw, zones")
	if err != nil || len(names) != 2 || names[1] != "zones" {
		t.Errorf("parseCollectors = %v, %v", names, err)
	}
}

// get fetches a path from the test server and returns the body.
func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// TestMuxEndpoints drives every endpoint through a real HTTP round trip.
func TestMuxEndpoints(t *testing.T) {
	rt := core.New(core.Config{
		HeapWords: 1 << 17,
		Mode:      core.Infrastructure,
		Telemetry: &telemetry.Config{},
	})
	srv := minidb.NewServer(rt, minidb.ServerConfig{Workers: 2, DB: minidb.Config{Entries: 50}})
	ts := httptest.NewServer(newMux(rt, srv))
	defer func() {
		ts.Close()
		srv.Close()
		if err := rt.Close(); err != nil {
			t.Error(err)
		}
	}()

	if code, body := get(t, ts.URL, "/find?key=5"); code != 200 || !strings.Contains(body, "found=true") {
		t.Errorf("/find?key=5 = %d %q", code, body)
	}
	if code, body := get(t, ts.URL, "/find?key=999999"); code != 200 || !strings.Contains(body, "found=false") {
		t.Errorf("/find absent = %d %q", code, body)
	}
	if code, _ := get(t, ts.URL, "/find?key=bogus"); code != 400 {
		t.Errorf("/find with bad key = %d, want 400", code)
	}
	for _, path := range []string{"/scan", "/add", "/remove", "/session", "/healthz"} {
		if code, body := get(t, ts.URL, path); code != 200 {
			t.Errorf("%s = %d %q", path, code, body)
		}
	}
	if code, body := get(t, ts.URL, "/metrics"); code != 200 || !strings.Contains(body, "gcassert_request_count") {
		t.Errorf("/metrics = %d, want request series; body:\n%s", code, body)
	}
	if code, body := get(t, ts.URL, "/stats"); code != 200 || !strings.Contains(body, `served{op="find"} 2`) {
		t.Errorf("/stats = %d %q", code, body)
	}
}

// TestSelfdriveSweepOverLoopbackHTTP is the tentpole smoke: a tiny sweep
// through the real loopback HTTP transport completes requests in every
// cell, and the offline per-cell summaries account for them.
func TestSelfdriveSweepOverLoopbackHTTP(t *testing.T) {
	report, err := harness.RunServingSweep(harness.ServingConfig{
		HeapWords:   1 << 17,
		Workers:     2,
		Entries:     100,
		Collectors:  []string{"stw", "concurrent"},
		Rates:       []int{100},
		Duration:    150 * time.Millisecond,
		MaxInflight: 32,
		EventDir:    t.TempDir(),
	}, loopbackTransport(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range report.Cells {
		if c.Completed == 0 || c.Errors != 0 {
			t.Errorf("cell %s@%d: completed=%d errors=%d", c.Collector, c.TargetRPS, c.Completed, c.Errors)
		}
		if c.Summary.AllRequest.Count != c.Completed {
			t.Errorf("cell %s@%d: summary %d spans != completed %d",
				c.Collector, c.TargetRPS, c.Summary.AllRequest.Count, c.Completed)
		}
	}
}
