// Package repro is a Go reproduction of "GC Assertions: Using the Garbage
// Collector to Check Heap Properties" (Aftandilian and Guyer, PLDI 2009).
//
// The public API lives in internal/core: a managed heap runtime whose
// tracing collector checks programmer-written assertions (assert-dead,
// regions, assert-instances, assert-unshared, assert-ownedby) during its
// normal trace. See README.md for a tour, DESIGN.md for the system map,
// and EXPERIMENTS.md for the paper-versus-measured results.
//
// The benchmarks in bench_test.go regenerate the paper's figures:
// Figures 2/3 (infrastructure overhead across the benchmark suite) and
// Figures 4/5 (overhead with thousands of assertions installed), plus
// ablations of the design decisions called out in DESIGN.md.
package repro
