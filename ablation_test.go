package repro

// Ablation benchmarks for the design decisions DESIGN.md calls out:
//
//  1. path tracking in the trace loop (the low-bit worklist) vs the plain
//     Base loop;
//  2. the paper's owner-first ownership phase vs the naive algorithm that
//     re-traces each owner's region separately after the ordinary mark;
//  3. sorted ownee arrays with binary search vs a hash set;
//  4. generational collection: minor-vs-full cost, and the detection
//     latency the paper warns about (assertions only checked at full
//     collections).

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/classes"
	"repro/internal/core"
	"repro/internal/cork"
	"repro/internal/jbb"
	"repro/internal/roots"
	"repro/internal/staleness"
	"repro/internal/trace"
	"repro/internal/vmheap"
)

// buildGraphHeap constructs a random object graph: n nodes with two ref
// fields wired to random targets, rooted at a handful of globals.
func buildGraphHeap(n int) (*vmheap.Heap, *classes.Registry, *roots.Table) {
	reg := classes.NewRegistry()
	node := reg.MustDefine("Node",
		nil,
		classes.Field{Name: "a", Kind: classes.RefKind},
		classes.Field{Name: "b", Kind: classes.RefKind},
		classes.Field{Name: "v", Kind: classes.DataKind},
	)
	h := vmheap.New(n*8 + 1024)
	gl := roots.NewTable()
	rng := rand.New(rand.NewSource(42))

	refs := make([]vmheap.Ref, n)
	for i := range refs {
		r, err := h.Alloc(vmheap.KindScalar, node.ID, node.FieldWords)
		if err != nil {
			panic(err)
		}
		refs[i] = r
	}
	aOff := uint32(node.MustFieldIndex("a"))
	bOff := uint32(node.MustFieldIndex("b"))
	for _, r := range refs {
		h.SetRefAt(r, aOff, refs[rng.Intn(n)])
		if rng.Intn(2) == 0 {
			h.SetRefAt(r, bOff, refs[rng.Intn(n)])
		}
	}
	for i := 0; i < 8; i++ {
		gl.Add(string(rune('a' + i))).Set(refs[rng.Intn(n)])
	}
	return h, reg, gl
}

// BenchmarkAblationPathTracking compares the Base trace loop against the
// Infrastructure loop (path-tracking worklist plus per-object checks) over
// an identical heap: the marginal cost of keeping full paths reconstructable
// at every moment of the trace.
func BenchmarkAblationPathTracking(b *testing.B) {
	const n = 50000
	for _, variant := range []string{"Base", "Infrastructure"} {
		b.Run(variant, func(b *testing.B) {
			h, reg, gl := buildGraphHeap(n)
			tr := trace.New(h, reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if variant == "Base" {
					tr.TraceBase(gl)
				} else {
					tr.TraceInfra(gl)
				}
				b.StopTimer()
				h.ClearMarks(0)
				tr.Reset()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationOwneeLookup compares the paper's sorted-array binary
// search against a Go hash set for the per-ownee membership query, at the
// _209_db scale (15k ownees).
func BenchmarkAblationOwneeLookup(b *testing.B) {
	const n = 15000
	rng := rand.New(rand.NewSource(7))
	ownees := make([]vmheap.Ref, n)
	for i := range ownees {
		ownees[i] = vmheap.Ref(uint32(i)*16 + 2)
	}
	sort.Slice(ownees, func(i, j int) bool { return ownees[i] < ownees[j] })
	set := make(map[vmheap.Ref]int, n)
	for i, r := range ownees {
		set[r] = i
	}
	// Query mix: half hits, half misses.
	queries := make([]vmheap.Ref, 4096)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = ownees[rng.Intn(n)]
		} else {
			queries[i] = vmheap.Ref(uint32(rng.Intn(n*16)) | 1) // odd: never an ownee
		}
	}

	b.Run("binary-search", func(b *testing.B) {
		var found int
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			lo, hi := 0, len(ownees)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if ownees[mid] < q {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(ownees) && ownees[lo] == q {
				found++
			}
		}
		_ = found
	})
	b.Run("hash-set", func(b *testing.B) {
		var found int
		for i := 0; i < b.N; i++ {
			if _, ok := set[queries[i%len(queries)]]; ok {
				found++
			}
		}
		_ = found
	})
}

// ownershipWorld builds a runtime with owners each holding a region of
// ownees, for the phase-vs-naive comparison.
type ownershipWorld struct {
	rt     *core.Runtime
	owners []core.Ref
	ownees [][]core.Ref
	elemA  uint16
}

func buildOwnershipWorld(owners, owneesPer int) *ownershipWorld {
	rt := core.New(core.Config{HeapWords: 1 << 20, Mode: core.Infrastructure})
	th := rt.MainThread()
	owner := rt.DefineClass("Owner", core.RefField("elems"))
	elem := rt.DefineClass("Elem", core.RefField("next"), core.DataField("v"))
	w := &ownershipWorld{rt: rt, elemA: elem.MustFieldIndex("next")}

	for o := 0; o < owners; o++ {
		f := th.PushFrame(2)
		ow := th.New(owner)
		f.SetLocal(0, ow)
		arr := th.NewRefArray(owneesPer)
		rt.SetRef(ow, owner.MustFieldIndex("elems"), arr)
		rt.AddGlobal(string(rune('A' + o))).Set(ow)
		var es []core.Ref
		for e := 0; e < owneesPer; e++ {
			el := th.New(elem)
			rt.ArrSetRef(arr, e, el)
			es = append(es, el)
			if err := rt.AssertOwnedBy(f.Local(0), el); err != nil {
				panic(err)
			}
		}
		w.owners = append(w.owners, f.Local(0))
		w.ownees = append(w.ownees, es)
		th.PopFrame()
	}
	return w
}

// BenchmarkAblationOwnership compares a full collection with the paper's
// ownership pre-phase (the real collector) against the naive algorithm:
// a normal collection followed by a separate reachability trace from each
// owner, re-processing the owner regions a second time.
func BenchmarkAblationOwnership(b *testing.B) {
	const owners, owneesPer = 8, 2000

	b.Run("paper-phase", func(b *testing.B) {
		w := buildOwnershipWorld(owners, owneesPer)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.rt.GC(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("naive-retrace", func(b *testing.B) {
		// Same heap shape, no registered assertions: the ownership work
		// is simulated by an extra per-owner reachability pass over the
		// public API, the double-processing the paper designs away.
		rt := core.New(core.Config{HeapWords: 1 << 20, Mode: core.Infrastructure})
		th := rt.MainThread()
		ownerC := rt.DefineClass("Owner", core.RefField("elems"))
		elemC := rt.DefineClass("Elem", core.RefField("next"), core.DataField("v"))
		elemsOff := ownerC.MustFieldIndex("elems")
		nextOff := elemC.MustFieldIndex("next")
		var ownerRefs []core.Ref
		owneeSet := make(map[core.Ref]bool, owners*owneesPer)
		for o := 0; o < owners; o++ {
			f := th.PushFrame(1)
			ow := th.New(ownerC)
			f.SetLocal(0, ow)
			arr := th.NewRefArray(owneesPer)
			rt.SetRef(ow, elemsOff, arr)
			rt.AddGlobal(string(rune('A' + o))).Set(ow)
			for e := 0; e < owneesPer; e++ {
				el := th.New(elemC)
				rt.ArrSetRef(arr, e, el)
				owneeSet[el] = true
			}
			ownerRefs = append(ownerRefs, f.Local(0))
			th.PopFrame()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.GC(); err != nil {
				b.Fatal(err)
			}
			// Naive pass: BFS from each owner, testing every reached
			// object for ownee-ness.
			for _, ow := range ownerRefs {
				visited := map[core.Ref]bool{}
				stack := []core.Ref{ow}
				for len(stack) > 0 {
					r := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if r == core.Nil || visited[r] {
						continue
					}
					visited[r] = true
					_ = owneeSet[r]
					switch rt.ClassOf(r) {
					case ownerC:
						stack = append(stack, rt.GetRef(r, elemsOff))
					case elemC:
						stack = append(stack, rt.GetRef(r, nextOff))
					default: // the elems array
						for j, n := 0, rt.ArrLen(r); j < n; j++ {
							stack = append(stack, rt.ArrGetRef(r, j))
						}
					}
				}
			}
		}
	})
}

// BenchmarkAblationGenerational compares per-collection cost of the
// generational collector's minor collections against full collections on a
// nursery-churn workload.
func BenchmarkAblationGenerational(b *testing.B) {
	build := func() (*core.Runtime, *core.Thread, *core.Class) {
		rt := core.New(core.Config{
			HeapWords:     1 << 18,
			Collector:     core.Generational,
			Mode:          core.Infrastructure,
			GenMajorEvery: 1 << 30,
			GenMinorFloor: -1,
		})
		node := rt.DefineClass("Node", core.RefField("next"), core.DataField("v"))
		th := rt.MainThread()
		// A mature live set.
		g := rt.AddGlobal("live")
		next := node.MustFieldIndex("next")
		for i := 0; i < 5000; i++ {
			n := th.New(node)
			rt.SetRef(n, next, g.Get())
			g.Set(n)
		}
		rt.GC() // promote
		return rt, th, node
	}

	b.Run("minor", func(b *testing.B) {
		rt, th, node := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j := 0; j < 2000; j++ {
				th.New(node) // nursery garbage
			}
			b.StartTimer()
			if err := rt.Collect(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		rt, th, node := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j := 0; j < 2000; j++ {
				th.New(node)
			}
			b.StartTimer()
			if err := rt.GC(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestGenerationalDetectionLatency quantifies the paper's generational
// caveat as a measurement: how many collections pass before an assert-dead
// violation is noticed, as a function of the major-collection period.
func TestGenerationalDetectionLatency(t *testing.T) {
	for _, majorEvery := range []int{1, 4, 16} {
		rt := core.New(core.Config{
			HeapWords:     1 << 16,
			Collector:     core.Generational,
			Mode:          core.Infrastructure,
			GenMajorEvery: majorEvery,
			GenMinorFloor: -1,
		})
		node := rt.DefineClass("Node", core.DataField("v"))
		th := rt.MainThread()
		obj := th.New(node)
		rt.AddGlobal("pin").Set(obj)
		if err := rt.AssertDead(obj); err != nil {
			t.Fatal(err)
		}

		gcs := 0
		for len(rt.Violations()) == 0 {
			if err := rt.Collect(); err != nil {
				t.Fatal(err)
			}
			gcs++
			if gcs > 100 {
				t.Fatalf("majorEvery=%d: violation never detected", majorEvery)
			}
		}
		// Detection waits for the first full collection: majorEvery
		// minors plus the major itself.
		if want := majorEvery + 1; gcs != want {
			t.Errorf("majorEvery=%d: detected after %d collections, want %d",
				majorEvery, gcs, want)
		}
	}
}

// BenchmarkBaselineDetectors compares the per-cycle cost of the paper's
// approach (ownership assertions piggybacked on the collection) against
// the related-work baselines, which each pay a separate full heap walk per
// cycle on top of the plain collection: the Cork-style census and the
// staleness tracker's Advance.
func BenchmarkBaselineDetectors(b *testing.B) {
	buildJBB := func(withAsserts bool) (*core.Runtime, *jbb.Benchmark) {
		rt := core.New(core.Config{HeapWords: 1 << 19, Mode: core.Infrastructure})
		bench := jbb.New(rt, jbb.Config{
			ClearLastOrder:     true,
			AssertOwnedByOnAdd: withAsserts,
		})
		bench.RunTransactions(1500)
		return rt, bench
	}

	b.Run("gc-assertions", func(b *testing.B) {
		rt, _ := buildJBB(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.GC(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cork-census", func(b *testing.B) {
		rt, _ := buildJBB(false)
		d := cork.New(cork.Config{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.GC(); err != nil {
				b.Fatal(err)
			}
			d.Observe(rt)
		}
	})
	b.Run("staleness-advance", func(b *testing.B) {
		rt, _ := buildJBB(false)
		tr := staleness.New(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.GC(); err != nil {
				b.Fatal(err)
			}
			tr.Advance(rt)
		}
	})
}
