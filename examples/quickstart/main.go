// Quickstart: a five-minute tour of GC assertions.
//
// We allocate a handful of managed objects, assert that one of them should
// be dead by the next collection, and watch the collector report the exact
// heap path that keeps it alive.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	// An Infrastructure-mode runtime checks assertions at every full
	// collection; violations go to the handler.
	rt := core.New(core.Config{
		HeapWords: 1 << 16, // 512 KB managed heap
		Mode:      core.Infrastructure,
		Handler:   &report.Logger{W: os.Stdout},
	})

	// Define classes: a Cache holding entries, and an Entry.
	cache := rt.DefineClass("Cache", core.RefField("entries"))
	entry := rt.DefineClass("Entry", core.DataField("value"))

	th := rt.MainThread()

	// Build: a global cache with three entries.
	c := th.New(cache)
	rt.AddGlobal("cache").Set(c)
	entries := th.NewRefArray(3)
	rt.SetRef(c, cache.MustFieldIndex("entries"), entries)
	for i := 0; i < 3; i++ {
		e := th.New(entry)
		rt.SetInt(e, entry.MustFieldIndex("value"), int64(i*100))
		rt.ArrSetRef(entries, i, e)
	}

	// "Evict" entry 1... but forget to clear the array slot.
	evicted := rt.ArrGetRef(entries, 1)
	fmt.Println("evicting entry 1 (but leaving a stale reference)...")

	// Tell the collector this object must be garbage by the next GC.
	if err := rt.AssertDead(evicted); err != nil {
		panic(err)
	}

	// The next collection checks the assertion during its normal trace —
	// and prints the path Cache -> Object[] -> Entry that pins it.
	if err := rt.GC(); err != nil {
		panic(err)
	}

	// Fix the bug and re-assert: now the object really dies, silently.
	fmt.Println("clearing the stale reference and collecting again...")
	rt.ArrSetRef(entries, 1, core.Nil)
	if err := rt.GC(); err != nil {
		panic(err)
	}

	st := rt.Stats()
	fmt.Printf("done: %d collections, %d violation(s) reported\n",
		st.GC.Collections, st.Asserts.Violations)
}
