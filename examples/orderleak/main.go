// Orderleak: finding a memory leak with assert-ownedby, the way the paper
// diagnoses SPEC JBB2000 (Section 3.2.1).
//
// An order-processing service keeps Orders in a work queue and also lets
// each Customer remember its most recent order. When an order is fulfilled
// it is removed from the queue — but nothing clears the customer's
// back-reference, so fulfilled orders leak.
//
// Instead of knowing *when* each order should die (assert-dead), we state
// the structural rule: every order is owned by the queue. The collector
// then flags any order that outlives its place in the queue, and prints
// the path through the Customer that pins it.
//
//	go run ./examples/orderleak
package main

import (
	"fmt"
	"os"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	rt := core.New(core.Config{
		HeapWords: 1 << 17,
		Mode:      core.Infrastructure,
		Handler:   &report.Logger{W: os.Stdout},
	})
	kit := collections.NewKit(rt)
	th := rt.MainThread()

	customer := rt.DefineClass("Customer", core.RefField("lastOrder"))
	order := rt.DefineClass("Order",
		core.RefField("customer"), core.DataField("id"))
	lastOrder := customer.MustFieldIndex("lastOrder")
	orderCustomer := order.MustFieldIndex("customer")
	orderID := order.MustFieldIndex("id")

	// The work queue (a managed B-tree keyed by order id) and a customer.
	queue := kit.NewTree(th)
	rt.AddGlobal("queue").Set(queue)
	cust := th.New(customer)
	rt.AddGlobal("customer").Set(cust)

	// Place ten orders; the queue owns each one.
	for id := int64(0); id < 10; id++ {
		o := th.New(order)
		rt.SetInt(o, orderID, id)
		rt.SetRef(o, orderCustomer, cust)
		kit.TreePut(th, queue, id, o)
		rt.SetRef(cust, lastOrder, o) // customer remembers the order

		if err := rt.AssertOwnedBy(queue, o); err != nil {
			panic(err)
		}
	}

	// Fulfill every order: remove from the queue. The bug: customer's
	// lastOrder still points at order 9.
	fmt.Println("fulfilling all ten orders...")
	for id := int64(0); id < 10; id++ {
		kit.TreeRemove(queue, id)
	}

	// The collection reports exactly one unowned order — the one the
	// customer still references — with the path that proves it.
	if err := rt.GC(); err != nil {
		panic(err)
	}

	// The repair: clear the back-reference when fulfilling.
	fmt.Println("applying the fix (clear lastOrder) and collecting again...")
	rt.SetRef(cust, lastOrder, core.Nil)
	if err := rt.GC(); err != nil {
		panic(err)
	}

	st := rt.Stats()
	fmt.Printf("done: %d violation(s); %d ownee(s) still tracked\n",
		st.Asserts.Violations, st.Asserts.OwneesLive)
}
