// Regions: checking that request handling is memory-stable with
// start-region / assert-alldead (Section 2.3.2 of the paper).
//
// A toy server handles connections; everything allocated while servicing a
// connection should be released when the connection closes. We bracket the
// handler with a region: if any allocation from inside the bracket
// survives the next collection, the collector reports it.
//
// The buggy handler appends each request's session to a global audit list;
// the fixed handler logs only the session id.
//
//	go run ./examples/regions
package main

import (
	"fmt"
	"os"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/report"
)

type server struct {
	rt      *core.Runtime
	th      *core.Thread
	kit     *collections.Kit
	session *core.Class
	sID     uint16
	sBuf    uint16
	audit   core.Ref // the leak: a global list of sessions
}

// handle services one connection inside a region bracket.
func (s *server) handle(id int64, leaky bool) {
	if err := s.th.StartRegion(); err != nil {
		panic(err)
	}

	f := s.th.PushFrame(2)
	// Per-connection allocations: a session object and an I/O buffer.
	sess := s.th.New(s.session)
	f.SetLocal(0, sess)
	s.rt.SetInt(sess, s.sID, id)
	buf := s.th.NewDataArray(256)
	s.rt.SetRef(f.Local(0), s.sBuf, buf)

	// "Process" the request.
	for i := 0; i < 256; i++ {
		s.rt.ArrSetData(buf, i, uint64(id)+uint64(i))
	}

	if leaky {
		// Bug: the audit trail keeps the whole session alive.
		s.kit.ListAdd(s.th, s.audit, f.Local(0))
	}
	s.th.PopFrame()

	// Everything allocated since StartRegion must now be garbage.
	if err := s.th.AssertAllDead(); err != nil {
		panic(err)
	}
}

func main() {
	rt := core.New(core.Config{
		HeapWords: 1 << 16,
		Mode:      core.Infrastructure,
		Handler:   &report.Logger{W: os.Stdout},
	})
	kit := collections.NewKit(rt)
	s := &server{rt: rt, th: rt.MainThread(), kit: kit}
	s.session = rt.DefineClass("Session",
		core.DataField("id"), core.RefField("buf"))
	s.sID = s.session.MustFieldIndex("id")
	s.sBuf = s.session.MustFieldIndex("buf")
	s.audit = kit.NewList(s.th)
	rt.AddGlobal("audit").Set(s.audit)

	fmt.Println("serving 5 connections with the leaky handler...")
	for id := int64(0); id < 5; id++ {
		s.handle(id, true)
	}
	if err := rt.GC(); err != nil {
		panic(err)
	}
	leakyViolations := rt.Stats().Asserts.Violations

	fmt.Println("serving 5 connections with the fixed handler...")
	// Drop the sessions leaked by the buggy phase: their dead bits stay
	// set, so they would be re-reported at every collection for as long
	// as the audit list pins them.
	kit.ListClear(s.audit)
	rt.ResetViolations()
	for id := int64(5); id < 10; id++ {
		s.handle(id, false)
	}
	if err := rt.GC(); err != nil {
		panic(err)
	}

	fmt.Printf("leaky handler: %d region violations; fixed handler: %d\n",
		leakyViolations, len(rt.Violations()))
}
