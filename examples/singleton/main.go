// Singleton: enforcing instance budgets with assert-instances, like the
// paper's lusearch case study (Section 3.2.2).
//
// A library's documentation says "open one SearchService and share it".
// The library itself installs assert-instances(SearchService, 1), so any
// program that opens a service per worker gets a warning at the next
// collection — exactly the diagnostic the paper proposes Lucene could ship.
//
//	go run ./examples/singleton
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	rt := core.New(core.Config{
		HeapWords: 1 << 16,
		Mode:      core.Infrastructure,
		Handler:   &report.Logger{W: os.Stdout},
	})
	th := rt.MainThread()

	service := rt.DefineClass("SearchService", core.DataField("opened"))

	// The library's self-check: at most one live SearchService.
	if err := rt.AssertInstances(service, 1); err != nil {
		panic(err)
	}

	// A misinformed application opens one service per worker.
	const workers = 8
	fmt.Printf("opening %d per-worker services...\n", workers)
	pool := th.NewRefArray(workers)
	rt.AddGlobal("workers").Set(pool)
	for i := 0; i < workers; i++ {
		rt.ArrSetRef(pool, i, th.New(service))
	}
	if err := rt.GC(); err != nil {
		panic(err)
	}

	// The fix: one shared service.
	fmt.Println("switching to a single shared service...")
	shared := th.New(service)
	for i := 0; i < workers; i++ {
		rt.ArrSetRef(pool, i, shared)
	}
	if err := rt.GC(); err != nil {
		panic(err)
	}

	vs := rt.Violations()
	fmt.Printf("violations: %d (expected 1, from the per-worker phase)\n", len(vs))
	for _, v := range vs {
		fmt.Printf("  %d live %s (limit %d) at GC cycle %d\n",
			v.Count, v.Class, v.Limit, v.Cycle)
	}
}
