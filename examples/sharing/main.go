// Sharing: verifying structural invariants with assert-unshared (Section
// 2.5.1 of the paper).
//
// A binary tree must stay a tree: every node has at most one parent. A
// refactored "optimization" starts reusing subtrees, silently turning the
// tree into a DAG — which breaks the mutation logic elsewhere. Asserting
// each node unshared catches the first shared node at the next collection.
//
//	go run ./examples/sharing
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	rt := core.New(core.Config{
		HeapWords: 1 << 16,
		Mode:      core.Infrastructure,
		Handler:   &report.Logger{W: os.Stdout},
	})
	th := rt.MainThread()

	node := rt.DefineClass("TreeNode",
		core.RefField("left"), core.RefField("right"), core.DataField("key"))
	left := node.MustFieldIndex("left")
	right := node.MustFieldIndex("right")
	key := node.MustFieldIndex("key")

	// Build a proper tree of depth 3, asserting every node unshared.
	var build func(depth int, k int64) core.Ref
	build = func(depth int, k int64) core.Ref {
		f := th.PushFrame(2)
		defer th.PopFrame()
		n := th.New(node)
		f.SetLocal(0, n)
		rt.SetInt(n, key, k)
		if err := rt.AssertUnshared(n); err != nil {
			panic(err)
		}
		if depth > 0 {
			l := build(depth-1, 2*k)
			f.SetLocal(1, l)
			rt.SetRef(f.Local(0), left, f.Local(1))
			r := build(depth-1, 2*k+1)
			f.SetLocal(1, r)
			rt.SetRef(f.Local(0), right, f.Local(1))
		}
		return f.Local(0)
	}

	root := build(3, 1)
	rt.AddGlobal("tree").Set(root)

	fmt.Println("collecting while the structure is a genuine tree...")
	if err := rt.GC(); err != nil {
		panic(err)
	}
	fmt.Printf("violations so far: %d\n\n", len(rt.Violations()))

	// The "optimization": share a subtree between two parents.
	fmt.Println("sharing a subtree (tree becomes a DAG)...")
	shared := rt.GetRef(rt.GetRef(root, left), right)
	rt.SetRef(rt.GetRef(root, right), left, shared)

	if err := rt.GC(); err != nil {
		panic(err)
	}
	fmt.Printf("violations after sharing: %d\n", len(rt.Violations()))
}
