package repro

// Telemetry overhead benchmark: pseudojbb (the paper's heaviest workload)
// in the Infrastructure configuration with telemetry disabled, ring-only,
// and streaming NDJSON to a discarded sink. The published figures run with
// telemetry off; results/telemetry.txt records the measured enabled
// overhead (the budget is <3%).
//
//	go test -run '^$' -bench BenchmarkTelemetry -benchmem .

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func BenchmarkTelemetry(b *testing.B) {
	cases := []struct {
		label string
		tele  *telemetry.Config
	}{
		{"off", nil},
		{"ring", &telemetry.Config{}},
		{"ndjson", &telemetry.Config{Sink: io.Discard}},
	}
	f := workloads.ByName("pseudojbb")
	for _, tc := range cases {
		b.Run(tc.label, func(b *testing.B) {
			w := f()
			rt := core.New(core.Config{
				HeapWords: w.HeapWords(),
				Mode:      core.Infrastructure,
				Telemetry: tc.tele,
			})
			th := rt.MainThread()
			w.Setup(rt, th)
			for i := 0; i < 3; i++ {
				w.Iterate(rt, th)
			}
			gc0 := rt.Stats().GC.GCTime
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Iterate(rt, th)
			}
			b.StopTimer()
			st := rt.Stats()
			gcMS := (st.GC.GCTime - gc0).Seconds() * 1000 / float64(b.N)
			b.ReportMetric(gcMS, "gc-ms/op")
			if tc.tele != nil {
				m := rt.Metrics()
				b.ReportMetric(float64(m.Events)/float64(b.N+3), "events/op")
			}
		})
	}
}
